//! Certified bound-guided best-first search over design grids.
//!
//! The exhaustive sweep ([`Explorer::explore`]) simulates every candidate;
//! the pruned Pareto sweep (`pareto.rs`) simulates only frontier
//! survivors. This module goes one step further for *single-objective*
//! selection: a best-first branch-and-bound that orders candidates by an
//! admissible lower bound on the active objective and simulates a design
//! only when its bound still beats the incumbent. On the paper grid it
//! reproduces `select::min_energy` / `select::min_cycles` bit-for-bit; on
//! expansive grids of 10⁶–10⁷ candidates ([`DesignSpace::expansive`]) it
//! returns an incumbent plus a **certified gap** without ever
//! materializing the grid.
//!
//! # Bound construction
//!
//! The bounds are the same admissible expressions the Pareto pruner uses
//! (see `pareto.rs` for the full argument): scanning a `(T, L)` pair's
//! untiled trace once yields the exact line-level access count `n`, the
//! distinct-line (compulsory-miss) floor `m`
//! ([`analysis::TraceFootprint`]), and the exact address-bus switching
//! `Add_bs`. A cold cache must miss every distinct line once regardless
//! of size, associativity, tiling or replacement policy — tiling permutes
//! the address multiset but never changes it (`loopir::transform::tile_all`)
//! — so evaluating the *same* cycle/energy expressions the evaluator
//! applies at `(hits = n − m, misses = m)` never overestimates:
//!
//! * per-leaf: `CycleModel::cycles_from_counts(n − m, m, S, L, B)` and
//!   `(n − m)·E_hit + m·E_miss`, with `Add_bs` exact for `B = 1` and
//!   lower-bounded by 0 otherwise;
//! * per-group (one node per `(T, L)` pair): the same expressions at the
//!   pair's minimum valid associativity and tiling — every cycle term is
//!   non-decreasing in both, and the energy terms do not depend on them.
//!
//! # Certification
//!
//! Candidates are totally ordered by the *selection key* — exactly the
//! comparator of `select::min_energy` / `min_cycles` (objective, then the
//! other metric, then cache size) extended with the sweep index so ties
//! resolve to the first design in sweep order, which is precisely what
//! `Iterator::min_by` keeps. Bound keys use the bounded metrics in the
//! same slots: each float component never overestimates its true
//! counterpart and the integer tail is identical, so a bound key is
//! lexicographically `≤` the true key. The open set (a min-heap of group
//! and leaf nodes) therefore certifies: when the heap minimum's key is
//! `≥` the incumbent's key, **no** open candidate — expanded or not — can
//! beat the incumbent, even on tie-breaks, and the search terminates with
//! gap 0. Because the first key component is the objective itself, the
//! heap minimum's first component is at any moment a valid lower bound on
//! every open candidate's objective — that is the anytime certificate.
//!
//! # Anytime semantics
//!
//! A deadline ([`SearchOptions::deadline`]) or a relative gap target
//! ([`SearchOptions::gap`]) stops the search early with the incumbent and
//! `lower_bound = min(incumbent, heap minimum, beam discards)` — the gap
//! is `incumbent − lower_bound ≥ 0` by construction and never *under*-
//! reports the true gap. A bounded beam ([`SearchOptions::beam`]) keeps
//! only the best-bounded `W` leaves per expansion; the discarded leaves'
//! minimum bound is folded into `lower_bound`, so a beam search's
//! certificate stays sound (it can only widen the reported gap).

use crate::analytic::{kernel_footprint_bytes, try_group_records};
use crate::explore::{steal_loop, DesignSpace, Explorer, SweepHists};
use crate::metrics::{read_trace, CacheDesign, Record};
use crate::obs::{FieldValue, Span};
use crate::pareto::{exact_add_bs, BoundInputs};
use crate::telemetry::SweepTelemetry;
use analysis::TraceFootprint;
use loopir::transform::tile_all;
use loopir::{DataLayout, Kernel};
use memsim::TraceEvent;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The scalar objective a search minimizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Objective {
    /// Minimize energy (nJ); ties broken by cycles, then cache size, then
    /// sweep order — the [`crate::select::min_energy`] comparator.
    Energy,
    /// Minimize cycles; ties broken by energy, then cache size, then
    /// sweep order — the [`crate::select::min_cycles`] comparator.
    Cycles,
    /// Minimize `energy_weight · E + cycles_weight · C`; ties broken by
    /// energy, then cycles, then cache size, then sweep order. Weights
    /// must be finite, non-negative and not both zero.
    Weighted {
        /// Weight on energy (nJ).
        energy_weight: f64,
        /// Weight on cycles.
        cycles_weight: f64,
    },
}

impl Objective {
    /// The scalar cost of a record under this objective.
    pub fn cost(&self, r: &Record) -> f64 {
        self.cost_of(r.energy_nj, r.cycles)
    }

    fn cost_of(&self, energy: f64, cycles: f64) -> f64 {
        match *self {
            Objective::Energy => energy,
            Objective::Cycles => cycles,
            Objective::Weighted {
                energy_weight,
                cycles_weight,
            } => energy_weight * energy + cycles_weight * cycles,
        }
    }

    /// The full selection key at `(energy, cycles)` for a design with the
    /// given cache size and sweep index. Used both for true records and
    /// for lower bounds — componentwise-bounded floats with an identical
    /// integer tail give a lexicographically bounded key.
    fn key_of(&self, energy: f64, cycles: f64, cache: usize, index: usize) -> Key {
        let floats = match *self {
            Objective::Energy => [energy, cycles, 0.0],
            Objective::Cycles => [cycles, energy, 0.0],
            Objective::Weighted { .. } => [self.cost_of(energy, cycles), energy, cycles],
        };
        Key {
            floats,
            cache,
            index,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Objective::Energy => write!(f, "energy"),
            Objective::Cycles => write!(f, "cycles"),
            Objective::Weighted {
                energy_weight,
                cycles_weight,
            } => write!(f, "weighted(energy={energy_weight},cycles={cycles_weight})"),
        }
    }
}

impl FromStr for Objective {
    type Err = String;

    /// Parses `energy`, `cycles`, or `weighted=WE,WC` (e.g.
    /// `weighted=1,0.001`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "energy" => return Ok(Objective::Energy),
            "cycles" => return Ok(Objective::Cycles),
            _ => {}
        }
        if let Some(spec) = s.strip_prefix("weighted=") {
            let parse = |w: &str| {
                w.parse::<f64>()
                    .map_err(|_| format!("invalid objective weight '{w}'"))
            };
            if let Some((we, wc)) = spec.split_once(',') {
                let o = Objective::Weighted {
                    energy_weight: parse(we)?,
                    cycles_weight: parse(wc)?,
                };
                o.validate()?;
                return Ok(o);
            }
            return Err(format!("expected weighted=WE,WC, got 'weighted={spec}'"));
        }
        Err(format!(
            "unknown objective '{s}' (expected energy, cycles, or weighted=WE,WC)"
        ))
    }
}

impl Objective {
    /// Checks weighted objectives for finite, non-negative, not-all-zero
    /// weights (the admissibility argument needs non-negative weights).
    pub fn validate(&self) -> Result<(), String> {
        if let Objective::Weighted {
            energy_weight,
            cycles_weight,
        } = *self
        {
            let ok = energy_weight.is_finite()
                && cycles_weight.is_finite()
                && energy_weight >= 0.0
                && cycles_weight >= 0.0
                && energy_weight + cycles_weight > 0.0;
            if !ok {
                return Err(format!(
                    "weighted objective needs finite non-negative weights with a \
                     positive sum, got energy={energy_weight} cycles={cycles_weight}"
                ));
            }
        }
        Ok(())
    }
}

/// Knobs of a bound-guided search.
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// Objective to minimize.
    pub objective: Objective,
    /// Beam width: maximum surviving leaves kept per group expansion,
    /// best-bound first. `None` (the default) keeps every survivor —
    /// exact search. Discarded leaves stay in the certificate via
    /// [`SearchOutcome::lower_bound`].
    pub beam: Option<usize>,
    /// Relative gap target: stop once `incumbent − lower_bound ≤
    /// gap · incumbent`. `0.0` (the default) certifies the exact optimum
    /// including sweep-order tie-breaks.
    pub gap: f64,
    /// Wall-clock budget; on expiry the search stops at the next node
    /// boundary with an anytime result ([`SearchOutcome::cancelled`]).
    pub deadline: Option<Duration>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            objective: Objective::Energy,
            beam: None,
            gap: 0.0,
            deadline: None,
        }
    }
}

/// Result of a bound-guided search: the incumbent plus its certificate.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The objective that was minimized.
    pub objective: Objective,
    /// Best simulated design, if any was simulated before the stop.
    pub incumbent: Option<Record>,
    /// Sweep index of the incumbent — its position in
    /// [`DesignSpace::designs`] order.
    pub incumbent_index: Option<usize>,
    /// Certified lower bound on the objective over the *entire* grid:
    /// every candidate — simulated, pruned, open, or beam-discarded — has
    /// true cost `≥ lower_bound`.
    pub lower_bound: f64,
    /// `true` iff the incumbent's cost is certified optimal (gap 0). With
    /// an unbounded beam the incumbent is additionally the bit-exact
    /// sweep-order tie-break winner, i.e. exactly what
    /// `select::min_energy` / `min_cycles` returns on the full sweep.
    pub complete: bool,
    /// `true` iff the deadline expired before the stop condition held.
    pub cancelled: bool,
    /// Total candidates in the grid ([`DesignSpace::design_count`]).
    pub candidates: usize,
    /// Group nodes expanded into leaves.
    pub expansions: u64,
    /// Leaves discarded by the beam (still covered by `lower_bound`).
    pub beam_discarded: u64,
    /// Sweep-style counters and phase timings (`designs_evaluated` is the
    /// number of simulations the bounds could not avoid).
    pub telemetry: SweepTelemetry,
}

impl SearchOutcome {
    /// The incumbent's objective cost (`+∞` with no incumbent).
    pub fn incumbent_cost(&self) -> f64 {
        self.incumbent
            .as_ref()
            .map(|r| self.objective.cost(r))
            .unwrap_or(f64::INFINITY)
    }

    /// Certified absolute gap: `incumbent − lower_bound`. `0` on
    /// completion (and for a trivially complete empty grid); `+∞` when an
    /// early stop left no incumbent.
    pub fn gap(&self) -> f64 {
        match &self.incumbent {
            Some(r) => (self.objective.cost(r) - self.lower_bound).max(0.0),
            None if self.complete => 0.0,
            None => f64::INFINITY,
        }
    }

    /// Certified relative gap: `gap / incumbent` (`0` when the gap is 0).
    pub fn relative_gap(&self) -> f64 {
        let gap = self.gap();
        if gap <= 0.0 {
            return 0.0;
        }
        let cost = self.incumbent_cost();
        if cost > 0.0 {
            gap / cost
        } else {
            f64::INFINITY
        }
    }
}

/// Total selection order: objective floats lexicographically, then cache
/// size, then sweep index (unique, so the order is total and matches
/// "first wins" of `Iterator::min_by` on full metric ties).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Key {
    floats: [f64; 3],
    cache: usize,
    index: usize,
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.floats.iter().zip(&other.floats) {
            match a.partial_cmp(b).expect("objective costs are finite") {
                Ordering::Equal => {}
                o => return o,
            }
        }
        (self.cache, self.index).cmp(&(other.cache, other.index))
    }
}

/// One prepared `(T, L)` pair: its valid axes, sweep-index base, shared
/// layout/trace identity, and bound inputs.
struct PairInfo {
    t: usize,
    l: usize,
    assocs: Vec<usize>,
    tilings: Vec<u64>,
    /// Sweep index of the pair's first design.
    base: usize,
    layout_id: usize,
    conflict_free: bool,
    bounds: BoundInputs,
}

/// A heap node: an unexpanded `(T, L)` group or a single bounded leaf.
struct Node {
    key: Key,
    kind: NodeKind,
}

enum NodeKind {
    /// Index into the prepared pair table.
    Group(usize),
    /// A concrete design awaiting simulation.
    Leaf {
        design: CacheDesign,
        index: usize,
        pair: usize,
    },
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Node {}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

impl Explorer {
    /// Bound-guided best-first search for the grid's single-objective
    /// optimum, with a certified optimality gap (see the module docs).
    ///
    /// With default options (unbounded beam, gap target 0, no deadline)
    /// the result is `complete` and the incumbent is bit-identical to
    /// running [`Explorer::explore`] and selecting with
    /// [`crate::select::min_energy`] / [`crate::select::min_cycles`].
    ///
    /// # Panics
    ///
    /// Panics on an invalid weighted objective
    /// (see [`Objective::validate`]).
    pub fn search(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        options: &SearchOptions,
    ) -> SearchOutcome {
        if let Err(e) = options.objective.validate() {
            panic!("{e}");
        }
        let objective = options.objective;
        let start = Instant::now();
        let deadline_at = options.deadline.map(|d| start + d);
        let obs = self.obs.as_deref();
        let search_span = Span::begin(obs, "search");
        let mut telemetry = SweepTelemetry::default();
        let hists = SweepHists::default();
        let footprint = kernel_footprint_bytes(kernel);

        // ---- Prepare: pairs, layouts, traces, bound inputs. -------------
        let mut pairs: Vec<PairInfo> = Vec::new();
        let mut base = 0usize;
        let policies = space.replacements.len() * space.write_policies.len();
        for &t in &space.cache_sizes {
            for &l in &space.line_sizes {
                if l > t || t / l < space.min_lines {
                    continue;
                }
                let lines = (t / l) as u64;
                let assocs: Vec<usize> = space
                    .assocs
                    .iter()
                    .copied()
                    .filter(|&s| s as u64 <= lines)
                    .collect();
                let tilings: Vec<u64> = space
                    .tilings
                    .iter()
                    .copied()
                    .filter(|&b| b <= lines)
                    .collect();
                let leaves = assocs.len() * tilings.len() * policies;
                if leaves == 0 {
                    continue;
                }
                pairs.push(PairInfo {
                    t,
                    l,
                    assocs,
                    tilings,
                    base,
                    layout_id: usize::MAX,
                    conflict_free: false,
                    bounds: BoundInputs {
                        accesses: 0,
                        min_misses: 0,
                        add_bs: 0.0,
                    },
                });
                base += leaves;
            }
        }
        let candidates = base;
        debug_assert_eq!(candidates, space.design_count());

        let workers = self.worker_count(pairs.len());
        let phase_start = Instant::now();
        let layout_slots: Vec<OnceLock<(DataLayout, bool)>> =
            pairs.iter().map(|_| OnceLock::new()).collect();
        let layout_span = Span::begin(obs, "layout");
        let worker_busy = steal_loop(workers, pairs.len(), |w, i| {
            let unit_start = Instant::now();
            let _ = layout_slots[i].set(self.evaluator.layout_for(kernel, pairs[i].t, pairs[i].l));
            let dur = unit_start.elapsed();
            hists.layout.record(dur);
            if let Some(o) = obs {
                o.unit(
                    "layout",
                    "place",
                    w as u64,
                    dur,
                    &[
                        ("cache", FieldValue::U64(pairs[i].t as u64)),
                        ("line", FieldValue::U64(pairs[i].l as u64)),
                    ],
                );
            }
        });
        drop(layout_span);
        let mut unique_layouts: Vec<DataLayout> = Vec::new();
        for (pair, slot) in pairs.iter_mut().zip(layout_slots) {
            let (layout, conflict_free) = slot.into_inner().expect("layout slot filled");
            let id = match unique_layouts.iter().position(|u| *u == layout) {
                Some(id) => id,
                None => {
                    unique_layouts.push(layout);
                    unique_layouts.len() - 1
                }
            };
            pair.layout_id = id;
            pair.conflict_free = conflict_free;
            telemetry.layouts_computed += 1;
        }
        telemetry.layout_time = phase_start.elapsed();

        // Traces keyed by (layout id, tiling); tiled kernels shared per B.
        let mut tiled: HashMap<u64, Kernel> = HashMap::new();
        let mut traces: HashMap<(usize, u64), Vec<TraceEvent>> = HashMap::new();
        let mut bound_inputs: HashMap<(usize, usize), BoundInputs> = HashMap::new();
        for pair in &mut pairs {
            let bkey = (pair.layout_id, pair.l);
            if let Some(b) = bound_inputs.get(&bkey) {
                pair.bounds = *b;
                continue;
            }
            let trace_start = Instant::now();
            if let std::collections::hash_map::Entry::Vacant(slot) =
                traces.entry((pair.layout_id, 1))
            {
                let base_kernel = tiled.entry(1).or_insert_with(|| tile_all(kernel, 1));
                let trace = read_trace(base_kernel, &unique_layouts[pair.layout_id]);
                telemetry.traces_generated += 1;
                telemetry.trace_events_generated += trace.len() as u64;
                slot.insert(trace);
            }
            telemetry.trace_time += trace_start.elapsed();
            let bound_start = Instant::now();
            let trace = &traces[&(pair.layout_id, 1)];
            let fp = TraceFootprint::analyze(pair.l as u64, trace.iter().map(|e| (e.addr, e.size)));
            let b = BoundInputs {
                accesses: fp.accesses,
                min_misses: fp.min_misses(),
                add_bs: exact_add_bs(trace, pair.l, self.evaluator.bus_encoding),
            };
            bound_inputs.insert(bkey, b);
            pair.bounds = b;
            telemetry.bound_time += bound_start.elapsed();
        }

        // ---- Seed the heap with one group node per pair. ----------------
        let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::with_capacity(pairs.len());
        for (p, pair) in pairs.iter().enumerate() {
            let (energy_lb, cycles_lb) = self.group_bounds(pair);
            heap.push(Reverse(Node {
                key: objective.key_of(energy_lb, cycles_lb, pair.t, pair.base),
                kind: NodeKind::Group(p),
            }));
        }

        // ---- Best-first loop. -------------------------------------------
        let mut incumbent: Option<(Record, usize, Key)> = None;
        let mut discarded_lb = f64::INFINITY;
        let mut beam_discarded = 0u64;
        let mut expansions = 0u64;
        let mut cancelled = false;
        while let Some(Reverse(node)) = heap.pop() {
            if let Some(at) = deadline_at {
                if Instant::now() >= at {
                    heap.push(Reverse(node));
                    cancelled = true;
                    break;
                }
            }
            if let Some((inc_rec, _, inc_key)) = &incumbent {
                // Exact certification: the heap minimum's key bounds every
                // open candidate's true key, tie-breaks included.
                if node.key >= *inc_key {
                    heap.push(Reverse(node));
                    break;
                }
                if options.gap > 0.0 {
                    let inc_cost = objective.cost(inc_rec);
                    let lb_now = inc_cost.min(node.key.floats[0]).min(discarded_lb);
                    if inc_cost - lb_now <= options.gap * inc_cost {
                        heap.push(Reverse(node));
                        break;
                    }
                }
            }
            match node.kind {
                NodeKind::Group(p) => {
                    expansions += 1;
                    let (kept, pruned_here) = self.expand(
                        &pairs[p],
                        p,
                        space,
                        objective,
                        incumbent.as_ref().map(|(_, _, k)| *k),
                    );
                    telemetry.designs_pruned += pruned_here;
                    let mut kept = kept;
                    if let Some(width) = options.beam {
                        if kept.len() > width {
                            kept.sort_by_key(|a| a.key);
                            for dropped in kept.drain(width..) {
                                discarded_lb = discarded_lb.min(dropped.key.floats[0]);
                                beam_discarded += 1;
                            }
                        }
                    }
                    if let Some(o) = obs {
                        o.counters
                            .pruned
                            .fetch_add(pruned_here as u64, AtomicOrdering::Relaxed);
                        o.point(
                            "search",
                            "expand",
                            &[
                                ("cache", FieldValue::U64(pairs[p].t as u64)),
                                ("line", FieldValue::U64(pairs[p].l as u64)),
                                ("bound_bits", FieldValue::U64(node.key.floats[0].to_bits())),
                                ("kept", FieldValue::U64(kept.len() as u64)),
                                ("pruned", FieldValue::U64(pruned_here as u64)),
                                ("open", FieldValue::U64(heap.len() as u64)),
                            ],
                        );
                    }
                    for leaf in kept {
                        heap.push(Reverse(leaf));
                    }
                }
                NodeKind::Leaf {
                    design,
                    index,
                    pair,
                } => {
                    // The incumbent may have improved since this leaf was
                    // pushed; its bound key is still valid, so re-check.
                    if let Some((_, _, inc_key)) = &incumbent {
                        if node.key >= *inc_key {
                            telemetry.designs_pruned += 1;
                            if let Some(o) = obs {
                                o.counters.pruned.fetch_add(1, AtomicOrdering::Relaxed);
                            }
                            continue;
                        }
                    }
                    let info = &pairs[pair];
                    let trace_start = Instant::now();
                    if let std::collections::hash_map::Entry::Vacant(slot) =
                        traces.entry((info.layout_id, design.tiling))
                    {
                        let tk = tiled
                            .entry(design.tiling)
                            .or_insert_with(|| tile_all(kernel, design.tiling));
                        let trace = read_trace(tk, &unique_layouts[info.layout_id]);
                        telemetry.traces_generated += 1;
                        telemetry.trace_events_generated += trace.len() as u64;
                        slot.insert(trace);
                    }
                    telemetry.trace_time += trace_start.elapsed();
                    let trace = &traces[&(info.layout_id, design.tiling)];
                    let sim_start = Instant::now();
                    // Leaves evaluate one design at a time, so the
                    // analytic fast path sees a bank of one; qualifying
                    // leaves skip the replay with bit-identical records.
                    let analytic_record = if self.analytic {
                        try_group_records(
                            &self.evaluator,
                            footprint,
                            &[(design, info.conflict_free)],
                            trace,
                        )
                        .map(|mut records| records.remove(0))
                    } else {
                        None
                    };
                    let analytic_hit = analytic_record.is_some();
                    let record = analytic_record.unwrap_or_else(|| {
                        self.evaluator
                            .evaluate_with_trace(design, trace, info.conflict_free)
                    });
                    if analytic_hit {
                        telemetry.analytic_groups += 1;
                    } else {
                        telemetry.simulated_groups += 1;
                        telemetry.trace_events_scanned += trace.len() as u64;
                    }
                    let dur = sim_start.elapsed();
                    hists.design.record(dur);
                    telemetry.simulate_time += dur;
                    telemetry.designs_evaluated += 1;
                    telemetry.trace_events_replayed += trace.len() as u64;
                    if let Some(o) = obs {
                        o.counters.add_done(1);
                        o.counters.add_events(trace.len() as u64);
                        o.unit(
                            "simulate",
                            "design",
                            0,
                            dur,
                            &[
                                ("design", FieldValue::Str(record.design.to_string())),
                                ("index", FieldValue::U64(index as u64)),
                            ],
                        );
                    }
                    let key = objective.key_of(
                        record.energy_nj,
                        record.cycles,
                        record.design.cache_size,
                        index,
                    );
                    let better = match &incumbent {
                        Some((_, _, inc_key)) => key < *inc_key,
                        None => true,
                    };
                    if better {
                        let cost = objective.cost(&record);
                        if let Some(o) = obs {
                            o.point(
                                "search",
                                "incumbent",
                                &[
                                    ("cost_bits", FieldValue::U64(cost.to_bits())),
                                    ("cost", FieldValue::Num(format!("{cost:.3}"))),
                                    ("design", FieldValue::Str(record.design.to_string())),
                                    ("index", FieldValue::U64(index as u64)),
                                ],
                            );
                        }
                        incumbent = Some((record, index, key));
                    }
                }
            }
        }

        // ---- Certificate. -----------------------------------------------
        let open_lb = heap
            .peek()
            .map(|Reverse(n)| n.key.floats[0])
            .unwrap_or(f64::INFINITY);
        let inc_cost = incumbent
            .as_ref()
            .map(|(r, _, _)| objective.cost(r))
            .unwrap_or(f64::INFINITY);
        let lower_bound = inc_cost.min(open_lb).min(discarded_lb);
        let complete = (incumbent.is_some() || candidates == 0) && lower_bound >= inc_cost;

        telemetry.workers = workers;
        telemetry.worker_busy = worker_busy;
        telemetry.cancelled = cancelled;
        telemetry.total_time = start.elapsed();
        hists.fill(&mut telemetry);
        let (incumbent, incumbent_index) = match incumbent {
            Some((r, i, _)) => (Some(r), Some(i)),
            None => (None, None),
        };
        if let Some(o) = obs {
            o.point(
                "search",
                "done",
                &[
                    ("complete", FieldValue::Bool(complete)),
                    ("cancelled", FieldValue::Bool(cancelled)),
                    ("expansions", FieldValue::U64(expansions)),
                    (
                        "evaluated",
                        FieldValue::U64(telemetry.designs_evaluated as u64),
                    ),
                    ("lower_bound_bits", FieldValue::U64(lower_bound.to_bits())),
                ],
            );
        }
        drop(search_span);
        SearchOutcome {
            objective,
            incumbent,
            incumbent_index,
            lower_bound,
            complete,
            cancelled,
            candidates,
            expansions,
            beam_discarded,
            telemetry,
        }
    }

    /// Admissible group bounds for a pair: the shared bound expressions at
    /// the pair's minimum valid associativity and tiling (cycle terms are
    /// non-decreasing in both; the energy terms depend on neither).
    fn group_bounds(&self, pair: &PairInfo) -> (f64, f64) {
        let b = pair.bounds;
        let max_hits = b.accesses - b.min_misses;
        let min_assoc = pair.assocs.iter().copied().min().expect("pair has assocs");
        let min_tiling = pair
            .tilings
            .iter()
            .copied()
            .min()
            .expect("pair has tilings");
        let cycles_lb = self.evaluator.cycle_model.cycles_from_counts(
            max_hits,
            b.min_misses,
            min_assoc,
            pair.l,
            min_tiling,
        );
        // The untiled trace is the candidate's own trace only at B = 1.
        let add_bs = if pair.tilings.iter().all(|&t| t == 1) {
            b.add_bs
        } else {
            0.0
        };
        let cfg = CacheDesign::new(pair.t, pair.l, min_assoc, 1)
            .cache_config()
            .expect("design spaces only enumerate valid geometry");
        let energy_lb = max_hits as f64 * self.evaluator.energy_model.hit_energy_nj(&cfg, add_bs)
            + b.min_misses as f64 * self.evaluator.energy_model.miss_energy_nj(&cfg, add_bs);
        (energy_lb, cycles_lb)
    }

    /// Expands a group into bounded leaves in sweep order, pruning every
    /// leaf whose bound key already loses to the incumbent's key. Returns
    /// the surviving leaves and the prune count.
    fn expand(
        &self,
        pair: &PairInfo,
        pair_idx: usize,
        space: &DesignSpace,
        objective: Objective,
        inc_key: Option<Key>,
    ) -> (Vec<Node>, usize) {
        let b = pair.bounds;
        let max_hits = b.accesses - b.min_misses;
        let mut kept = Vec::new();
        let mut pruned = 0usize;
        let mut offset = 0usize;
        for &s in &pair.assocs {
            let cycles_per_hit_term = self.evaluator.cycle_model.cycles_per_hit(s);
            let cfg = CacheDesign::new(pair.t, pair.l, s, 1)
                .cache_config()
                .expect("design spaces only enumerate valid geometry");
            for &tile in &pair.tilings {
                let cycles_lb = max_hits as f64 * cycles_per_hit_term
                    + b.min_misses as f64
                        * (tile as f64 + self.evaluator.cycle_model.cycles_per_miss(pair.l));
                let add_bs = if tile == 1 { b.add_bs } else { 0.0 };
                let energy_lb = max_hits as f64
                    * self.evaluator.energy_model.hit_energy_nj(&cfg, add_bs)
                    + b.min_misses as f64
                        * self.evaluator.energy_model.miss_energy_nj(&cfg, add_bs);
                for &r in &space.replacements {
                    for &w in &space.write_policies {
                        let index = pair.base + offset;
                        offset += 1;
                        let key = objective.key_of(energy_lb, cycles_lb, pair.t, index);
                        if let Some(ik) = inc_key {
                            if key >= ik {
                                pruned += 1;
                                continue;
                            }
                        }
                        kept.push(Node {
                            key,
                            kind: NodeKind::Leaf {
                                design: CacheDesign::new(pair.t, pair.l, s, tile)
                                    .with_replacement(r)
                                    .with_write_policy(w),
                                index,
                                pair: pair_idx,
                            },
                        });
                    }
                }
            }
        }
        (kept, pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select;
    use loopir::kernels;

    fn search_with(kernel: &Kernel, space: &DesignSpace, options: &SearchOptions) -> SearchOutcome {
        Explorer::default().search(kernel, space, options)
    }

    #[test]
    fn energy_search_matches_min_energy_on_the_paper_grid() {
        let kernel = kernels::compress(31);
        let space = DesignSpace::paper();
        let explorer = Explorer::default();
        let records = explorer.explore(&kernel, &space);
        let oracle = select::min_energy(&records).expect("non-empty grid");
        let out = explorer.search(&kernel, &space, &SearchOptions::default());
        assert!(out.complete && !out.cancelled);
        assert_eq!(out.gap(), 0.0);
        let best = out.incumbent.expect("complete search has an incumbent");
        assert_eq!(&best, oracle);
        assert_eq!(
            space.designs()[out.incumbent_index.expect("index")],
            best.design
        );
        assert!(
            out.telemetry.designs_evaluated < records.len(),
            "bounds should avoid simulating the whole grid \
             ({} of {})",
            out.telemetry.designs_evaluated,
            records.len()
        );
    }

    #[test]
    fn cycles_search_matches_min_cycles_on_the_paper_grid() {
        let kernel = kernels::matmul(8);
        let space = DesignSpace::paper();
        let explorer = Explorer::default();
        let records = explorer.explore(&kernel, &space);
        let oracle = select::min_cycles(&records).expect("non-empty grid");
        let out = explorer.search(
            &kernel,
            &space,
            &SearchOptions {
                objective: Objective::Cycles,
                ..Default::default()
            },
        );
        assert!(out.complete);
        assert_eq!(out.incumbent.as_ref().expect("incumbent"), oracle);
    }

    #[test]
    fn weighted_search_with_policy_axes_matches_the_brute_force_oracle() {
        let kernel = kernels::matadd(8);
        let space = DesignSpace {
            assocs: vec![1, 2],
            tilings: vec![1, 2],
            replacements: vec![memsim::Replacement::Lru, memsim::Replacement::Fifo],
            write_policies: vec![
                memsim::WritePolicy::WriteBackAllocate,
                memsim::WritePolicy::WriteThroughNoAllocate,
            ],
            ..DesignSpace::small()
        };
        let objective = Objective::Weighted {
            energy_weight: 1.0,
            cycles_weight: 0.5,
        };
        let explorer = Explorer::default();
        let designs = space.designs();
        let oracle = designs
            .iter()
            .map(|&d| explorer.evaluator.evaluate(&kernel, d))
            .min_by(|a, b| {
                objective
                    .cost(a)
                    .partial_cmp(&objective.cost(b))
                    .expect("finite")
            })
            .expect("non-empty grid");
        let out = explorer.search(
            &kernel,
            &space,
            &SearchOptions {
                objective,
                ..Default::default()
            },
        );
        assert!(out.complete);
        let best = out.incumbent.expect("incumbent");
        assert_eq!(objective.cost(&best), objective.cost(&oracle));
    }

    #[test]
    fn beam_search_never_reports_a_gap_below_the_true_one() {
        let kernel = kernels::compress(16);
        let space = DesignSpace::paper();
        let explorer = Explorer::default();
        let records = explorer.explore(&kernel, &space);
        let oracle_cost = Objective::Energy.cost(select::min_energy(&records).expect("grid"));
        for beam in [1usize, 4, 16] {
            let out = explorer.search(
                &kernel,
                &space,
                &SearchOptions {
                    beam: Some(beam),
                    ..Default::default()
                },
            );
            let best = out.incumbent.clone().expect("beam search still simulates");
            let true_gap = Objective::Energy.cost(&best) - oracle_cost;
            assert!(
                out.gap() >= true_gap - 1e-9,
                "beam {beam}: reported gap {} under-reports true gap {true_gap}",
                out.gap()
            );
            assert!(
                out.lower_bound <= oracle_cost,
                "beam {beam}: lower bound {} exceeds the true optimum {oracle_cost}",
                out.lower_bound
            );
        }
    }

    #[test]
    fn zero_deadline_yields_a_well_formed_anytime_result() {
        let out = search_with(
            &kernels::compress(16),
            &DesignSpace::paper(),
            &SearchOptions {
                deadline: Some(Duration::ZERO),
                ..Default::default()
            },
        );
        assert!(out.cancelled && !out.complete);
        assert!(out.incumbent.is_none());
        assert!(out.lower_bound.is_finite());
        assert!(out.gap().is_infinite());
        assert!(out.telemetry.cancelled);
    }

    #[test]
    fn relative_gap_target_stops_early_with_a_certified_gap() {
        let kernel = kernels::compress(16);
        let space = DesignSpace::paper();
        let explorer = Explorer::default();
        let exact = explorer.search(&kernel, &space, &SearchOptions::default());
        let loose = explorer.search(
            &kernel,
            &space,
            &SearchOptions {
                gap: 0.5,
                ..Default::default()
            },
        );
        assert!(loose.relative_gap() <= 0.5);
        let best = loose.incumbent.expect("incumbent");
        // The certificate is sound: the true optimum lies above the bound.
        assert!(loose.lower_bound <= exact.incumbent_cost() + 1e-9);
        assert!(Objective::Energy.cost(&best) >= exact.incumbent_cost());
        assert!(loose.telemetry.designs_evaluated <= exact.telemetry.designs_evaluated);
    }

    #[test]
    fn empty_space_is_trivially_complete() {
        let out = search_with(
            &kernels::compress(8),
            &DesignSpace::default(),
            &SearchOptions::default(),
        );
        assert!(out.complete && out.incumbent.is_none());
        assert_eq!(out.candidates, 0);
        assert_eq!(out.gap(), 0.0);
    }

    #[test]
    fn objective_parsing_round_trips() {
        assert_eq!("energy".parse::<Objective>().unwrap(), Objective::Energy);
        assert_eq!("cycles".parse::<Objective>().unwrap(), Objective::Cycles);
        assert_eq!(
            "weighted=1,0.5".parse::<Objective>().unwrap(),
            Objective::Weighted {
                energy_weight: 1.0,
                cycles_weight: 0.5
            }
        );
        assert!("weighted=-1,2".parse::<Objective>().is_err());
        assert!("weighted=0,0".parse::<Objective>().is_err());
        assert!("speed".parse::<Objective>().is_err());
    }

    #[test]
    #[should_panic(expected = "weighted objective needs")]
    fn invalid_weights_panic_with_a_typed_message() {
        let _ = search_with(
            &kernels::compress(8),
            &DesignSpace::small(),
            &SearchOptions {
                objective: Objective::Weighted {
                    energy_weight: -1.0,
                    cycles_weight: 1.0,
                },
                ..Default::default()
            },
        );
    }
}
