//! Configuration selection under time and/or energy bounds.
//!
//! The paper's §3: "the minimum energy cache configuration for Compress is
//! C16L4 and the minimum time configuration is C512L64. If the number of
//! processor cycles is bound to 5,000, the minimum energy configuration is
//! C64L16; if the energy is bound to 5,500 nJ, the minimum time
//! configuration is C512L64." These selectors implement exactly those
//! queries, plus the energy–time Pareto frontier.

use crate::metrics::Record;

/// The record with minimum energy, ties broken by fewer cycles then smaller
/// cache. `None` for an empty slice.
///
/// # Example
///
/// ```
/// use memexplore::{select, DesignSpace, Explorer};
/// use loopir::kernels;
///
/// let records = Explorer::default().explore(&kernels::matadd(6), &DesignSpace::small());
/// let best = select::min_energy(&records).expect("non-empty space");
/// assert!(records.iter().all(|r| best.energy_nj <= r.energy_nj));
/// ```
pub fn min_energy(records: &[Record]) -> Option<&Record> {
    records.iter().min_by(|a, b| {
        (a.energy_nj, a.cycles, a.design.cache_size)
            .partial_cmp(&(b.energy_nj, b.cycles, b.design.cache_size))
            .expect("metrics are finite")
    })
}

/// The record with minimum cycles, ties broken by lower energy then smaller
/// cache. `None` for an empty slice.
pub fn min_cycles(records: &[Record]) -> Option<&Record> {
    records.iter().min_by(|a, b| {
        (a.cycles, a.energy_nj, a.design.cache_size)
            .partial_cmp(&(b.cycles, b.energy_nj, b.design.cache_size))
            .expect("metrics are finite")
    })
}

/// Minimum-energy configuration among those meeting a cycle bound
/// ("time is the hard constraint"). `None` when nothing meets the bound.
pub fn min_energy_bounded(records: &[Record], max_cycles: f64) -> Option<&Record> {
    let feasible: Vec<&Record> = records.iter().filter(|r| r.cycles <= max_cycles).collect();
    feasible
        .into_iter()
        .min_by(|a, b| a.energy_nj.partial_cmp(&b.energy_nj).expect("finite"))
}

/// Minimum-cycles configuration among those meeting an energy bound
/// ("energy is the hard constraint"). `None` when nothing meets the bound.
pub fn min_cycles_bounded(records: &[Record], max_energy_nj: f64) -> Option<&Record> {
    let feasible: Vec<&Record> = records
        .iter()
        .filter(|r| r.energy_nj <= max_energy_nj)
        .collect();
    feasible
        .into_iter()
        .min_by(|a, b| a.cycles.partial_cmp(&b.cycles).expect("finite"))
}

/// Minimum-energy configuration meeting *both* bounds.
pub fn min_energy_double_bounded(
    records: &[Record],
    max_cycles: f64,
    max_energy_nj: f64,
) -> Option<&Record> {
    records
        .iter()
        .filter(|r| r.cycles <= max_cycles && r.energy_nj <= max_energy_nj)
        .min_by(|a, b| a.energy_nj.partial_cmp(&b.energy_nj).expect("finite"))
}

/// The energy–time Pareto frontier: records not dominated in
/// (cycles, energy). Returned sorted by cycles ascending.
///
/// # Example
///
/// ```
/// use memexplore::{select, DesignSpace, Explorer};
/// use loopir::kernels;
///
/// let records = Explorer::default().explore(&kernels::matadd(6), &DesignSpace::small());
/// let frontier = select::pareto(&records);
/// // The frontier walks from fastest to cheapest.
/// assert!(frontier.windows(2).all(|w| w[0].cycles <= w[1].cycles));
/// assert!(frontier.windows(2).all(|w| w[0].energy_nj >= w[1].energy_nj));
/// ```
pub fn pareto(records: &[Record]) -> Vec<&Record> {
    let mut sorted: Vec<&Record> = records.iter().collect();
    sorted.sort_by(|a, b| {
        (a.cycles, a.energy_nj)
            .partial_cmp(&(b.cycles, b.energy_nj))
            .expect("finite")
    });
    let mut frontier: Vec<&Record> = Vec::new();
    let mut best_energy = f64::INFINITY;
    for r in sorted {
        if r.energy_nj < best_energy {
            best_energy = r.energy_nj;
            frontier.push(r);
        }
    }
    frontier
}

/// Whether `a` strictly dominates `b` in the paper's three objectives
/// — cycles, energy, **and cache size** (all ≤, at least one <).
///
/// This is the dominance relation of the multi-objective mode: a smaller
/// cache with equal time and energy is a strictly better embedded design.
pub fn dominates3(a: &Record, b: &Record) -> bool {
    let le = a.cycles <= b.cycles
        && a.energy_nj <= b.energy_nj
        && a.design.cache_size <= b.design.cache_size;
    le && (a.cycles < b.cycles
        || a.energy_nj < b.energy_nj
        || a.design.cache_size < b.design.cache_size)
}

/// Sort key that totally orders frontier records: metrics first, then the
/// remaining design coordinates so ties are broken deterministically.
fn canonical_key(r: &Record) -> (f64, f64, usize, usize, usize, u64) {
    (
        r.cycles,
        r.energy_nj,
        r.design.cache_size,
        r.design.line,
        r.design.assoc,
        r.design.tiling,
    )
}

/// The exact three-objective Pareto frontier over
/// `(cycles, energy, cache size)`: every record not strictly dominated by
/// another (ties are kept — equal points dominate nothing).
///
/// The result is sorted by the canonical key (cycles, energy, cache size,
/// then the remaining design coordinates), so two frontiers computed from
/// the same underlying records — e.g. by the exhaustive and the pruned
/// sweep — compare equal with `==`, bitwise on the floating-point metrics.
///
/// # Example
///
/// ```
/// use memexplore::{select, DesignSpace, Explorer};
/// use loopir::kernels;
///
/// let records = Explorer::default().explore(&kernels::matadd(6), &DesignSpace::small());
/// let frontier = select::pareto3(&records);
/// assert!(!frontier.is_empty());
/// // No frontier member dominates another.
/// for a in &frontier {
///     assert!(!frontier.iter().any(|b| select::dominates3(b, a)));
/// }
/// ```
pub fn pareto3(records: &[Record]) -> Vec<Record> {
    let mut frontier: Vec<Record> = records
        .iter()
        .filter(|r| !records.iter().any(|other| dominates3(other, r)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        canonical_key(a)
            .partial_cmp(&canonical_key(b))
            .expect("metrics are finite")
    });
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CacheDesign;

    fn rec(t: usize, cycles: f64, energy: f64) -> Record {
        Record {
            design: CacheDesign::new(t, 4, 1, 1),
            miss_rate: 0.1,
            cycles,
            energy_nj: energy,
            trip_count: 1000,
            conflict_free: true,
        }
    }

    fn sample() -> Vec<Record> {
        vec![
            rec(16, 9000.0, 3000.0),
            rec(32, 7000.0, 3500.0),
            rec(64, 5000.0, 4200.0),
            rec(128, 4200.0, 5200.0),
            rec(512, 4000.0, 8000.0),
            rec(256, 6000.0, 6000.0), // dominated by the 64-byte point
        ]
    }

    #[test]
    fn unbounded_minima() {
        let r = sample();
        assert_eq!(min_energy(&r).unwrap().design.cache_size, 16);
        assert_eq!(min_cycles(&r).unwrap().design.cache_size, 512);
    }

    #[test]
    fn cycle_bound_moves_the_energy_optimum() {
        let r = sample();
        // Bound 5000: only the 64/128/512 points qualify; cheapest is 64.
        let best = min_energy_bounded(&r, 5000.0).unwrap();
        assert_eq!(best.design.cache_size, 64);
    }

    #[test]
    fn energy_bound_moves_the_time_optimum() {
        let r = sample();
        let best = min_cycles_bounded(&r, 5500.0).unwrap();
        assert_eq!(best.design.cache_size, 128);
    }

    #[test]
    fn double_bound_can_be_infeasible() {
        let r = sample();
        assert!(min_energy_double_bounded(&r, 4000.0, 3000.0).is_none());
        let ok = min_energy_double_bounded(&r, 6000.0, 5000.0).unwrap();
        assert_eq!(ok.design.cache_size, 64);
    }

    #[test]
    fn pareto_excludes_dominated_points() {
        let r = sample();
        let front = pareto(&r);
        let sizes: Vec<usize> = front.iter().map(|r| r.design.cache_size).collect();
        assert_eq!(sizes, vec![512, 128, 64, 32, 16]);
        assert!(!sizes.contains(&256));
    }

    #[test]
    fn empty_input_yields_none() {
        let r: Vec<Record> = Vec::new();
        assert!(min_energy(&r).is_none());
        assert!(min_cycles(&r).is_none());
        assert!(min_energy_bounded(&r, 1e9).is_none());
        assert!(pareto(&r).is_empty());
    }

    #[test]
    fn unreachable_bounds_yield_none() {
        let r = sample();
        assert!(min_energy_bounded(&r, 10.0).is_none());
        assert!(min_cycles_bounded(&r, 10.0).is_none());
    }

    #[test]
    fn dominates3_requires_strictness() {
        let a = rec(16, 100.0, 100.0);
        let b = rec(16, 100.0, 100.0);
        assert!(!dominates3(&a, &b)); // ties dominate nothing
        let c = rec(16, 100.0, 101.0);
        assert!(dominates3(&a, &c));
        assert!(!dominates3(&c, &a));
        // Smaller cache alone is a strict improvement.
        let d = rec(32, 100.0, 100.0);
        assert!(dominates3(&a, &d));
    }

    #[test]
    fn dominates3_needs_all_three_axes() {
        let fast_big = rec(512, 10.0, 100.0);
        let slow_small = rec(16, 100.0, 10.0);
        assert!(!dominates3(&fast_big, &slow_small));
        assert!(!dominates3(&slow_small, &fast_big));
    }

    #[test]
    fn pareto3_keeps_cache_size_tradeoffs_pareto2_drops() {
        // Same cycles/energy at different sizes: 2-D pareto keeps one,
        // 3-D dominance removes the bigger cache.
        let r = vec![rec(16, 100.0, 100.0), rec(32, 100.0, 100.0)];
        let f = pareto3(&r);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].design.cache_size, 16);
        // But a bigger cache that buys speed survives.
        let r = vec![rec(16, 100.0, 100.0), rec(32, 90.0, 100.0)];
        assert_eq!(pareto3(&r).len(), 2);
    }

    #[test]
    fn pareto3_ties_are_kept_and_ordered() {
        let mut a = rec(16, 100.0, 100.0);
        a.design.line = 8;
        let mut b = rec(16, 100.0, 100.0);
        b.design.line = 4;
        let f = pareto3(&[a.clone(), b.clone()]);
        assert_eq!(f, vec![b, a]); // canonical order breaks the tie by line
    }

    #[test]
    fn pareto3_is_order_independent() {
        let mut r = sample();
        let f1 = pareto3(&r);
        r.reverse();
        let f2 = pareto3(&r);
        assert_eq!(f1, f2);
    }

    #[test]
    fn pareto3_of_empty_is_empty() {
        assert!(pareto3(&[]).is_empty());
    }

    #[test]
    fn pareto3_members_are_mutually_nondominated() {
        let f = pareto3(&sample());
        for a in &f {
            assert!(!f.iter().any(|b| dominates3(b, a)));
        }
        // Every excluded record is dominated by some frontier member.
        for r in sample() {
            if !f.contains(&r) {
                assert!(f.iter().any(|m| dominates3(m, &r)), "{:?}", r.design);
            }
        }
    }
}
