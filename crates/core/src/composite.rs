//! Whole-program exploration from kernel records (§5).
//!
//! A large program — the paper's MPEG decoder — is a set of kernel programs
//! each invoked `trip(k)` times. Given per-kernel records
//! `(T, L, S, B, mr, C, E)`, the whole-program metrics for a configuration
//! are
//!
//! ```text
//! MISS_R = Σ mr(k)·trip(k) / Σ trip(k)
//! CYCLES = Σ C(k)·trip(k)
//! ENERGY = Σ E(k)·trip(k)
//! ```
//!
//! and the selection procedure is the same as for a single kernel. The
//! paper's headline: the whole-decoder minimum-energy configuration differs
//! from every kernel's own optimum.

use crate::explore::{DesignSpace, Explorer};
use crate::metrics::{CacheDesign, Record};
use loopir::Kernel;

/// A program composed of weighted kernels.
///
/// # Example
///
/// ```
/// use loopir::kernels;
/// use memexplore::{CompositeProgram, DesignSpace, Explorer};
///
/// let program = CompositeProgram::new(
///     "filter chain",
///     vec![(kernels::fir(64, 8), 10), (kernels::matadd(6), 1)],
/// );
/// let records = program.explore(&Explorer::default(), &DesignSpace::small());
/// // One whole-program record per design, aggregating both kernels.
/// assert_eq!(records.len(), DesignSpace::small().designs().len());
/// assert_eq!(records[0].per_kernel.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct CompositeProgram {
    /// Program name, e.g. `"MPEG decoder"`.
    pub name: String,
    /// `(kernel, trip count)` pairs — how often each kernel runs.
    pub components: Vec<(Kernel, u64)>,
}

/// Whole-program metrics for one design, plus the per-kernel records they
/// were aggregated from.
#[derive(Clone, Debug)]
pub struct CompositeRecord {
    /// The design point.
    pub design: CacheDesign,
    /// Trip-weighted miss rate (`MISS_R`).
    pub miss_rate: f64,
    /// Total cycles (`CYCLES`).
    pub cycles: f64,
    /// Total energy in nanojoules (`ENERGY`).
    pub energy_nj: f64,
    /// The per-kernel records, in component order.
    pub per_kernel: Vec<Record>,
}

impl CompositeProgram {
    /// Builds a composite program.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or any trip count is zero.
    pub fn new(name: impl Into<String>, components: Vec<(Kernel, u64)>) -> Self {
        assert!(
            !components.is_empty(),
            "composite needs at least one kernel"
        );
        assert!(
            components.iter().all(|(_, t)| *t > 0),
            "trip counts must be positive"
        );
        CompositeProgram {
            name: name.into(),
            components,
        }
    }

    /// Total trip count `Σ trip(k)`.
    pub fn total_trips(&self) -> u64 {
        self.components.iter().map(|(_, t)| t).sum()
    }

    /// Aggregates per-kernel records (one per component, same design) into
    /// a whole-program record using the paper's formulas.
    ///
    /// # Panics
    ///
    /// Panics if `records` length differs from the component count or the
    /// designs disagree.
    pub fn aggregate(&self, records: Vec<Record>) -> CompositeRecord {
        assert_eq!(
            records.len(),
            self.components.len(),
            "one record per component required"
        );
        let design = records[0].design;
        assert!(
            records.iter().all(|r| r.design == design),
            "all records must share one design"
        );
        let total_trips = self.total_trips() as f64;
        let mut miss_r = 0.0;
        let mut cycles = 0.0;
        let mut energy = 0.0;
        for ((_, trips), r) in self.components.iter().zip(&records) {
            let t = *trips as f64;
            miss_r += r.miss_rate * t;
            cycles += r.cycles * t;
            energy += r.energy_nj * t;
        }
        CompositeRecord {
            design,
            miss_rate: miss_r / total_trips,
            cycles,
            energy_nj: energy,
            per_kernel: records,
        }
    }

    /// Explores the whole design space: every kernel evaluated at every
    /// design, then aggregated.
    pub fn explore(&self, explorer: &Explorer, space: &DesignSpace) -> Vec<CompositeRecord> {
        let designs = space.designs();
        // Per-kernel sweeps (each internally parallel), then zip.
        let per_kernel: Vec<Vec<Record>> = self
            .components
            .iter()
            .map(|(k, _)| explorer.explore_designs(k, &designs))
            .collect();
        (0..designs.len())
            .map(|i| {
                let records: Vec<Record> = per_kernel.iter().map(|rs| rs[i].clone()).collect();
                self.aggregate(records)
            })
            .collect()
    }
}

/// Converts composite records into plain records (dropping per-kernel
/// detail) so the [`select`](crate::select) functions apply unchanged.
pub fn as_records(composites: &[CompositeRecord]) -> Vec<Record> {
    composites
        .iter()
        .map(|c| Record {
            design: c.design,
            miss_rate: c.miss_rate,
            cycles: c.cycles,
            energy_nj: c.energy_nj,
            trip_count: 0,
            conflict_free: c.per_kernel.iter().all(|r| r.conflict_free),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Evaluator;
    use loopir::kernels;

    fn two_kernel_program() -> CompositeProgram {
        CompositeProgram::new(
            "demo",
            vec![(kernels::matadd(6), 10), (kernels::dequant(8), 3)],
        )
    }

    #[test]
    fn aggregate_uses_paper_formulas() {
        let p = two_kernel_program();
        let eval = Evaluator::default();
        let d = CacheDesign::new(64, 8, 1, 1);
        let r1 = eval.evaluate(&p.components[0].0, d);
        let r2 = eval.evaluate(&p.components[1].0, d);
        let agg = p.aggregate(vec![r1.clone(), r2.clone()]);
        let expect_miss = (r1.miss_rate * 10.0 + r2.miss_rate * 3.0) / 13.0;
        assert!((agg.miss_rate - expect_miss).abs() < 1e-12);
        assert!((agg.cycles - (r1.cycles * 10.0 + r2.cycles * 3.0)).abs() < 1e-9);
        assert!((agg.energy_nj - (r1.energy_nj * 10.0 + r2.energy_nj * 3.0)).abs() < 1e-6);
    }

    #[test]
    fn explore_returns_one_composite_per_design() {
        let p = two_kernel_program();
        let space = DesignSpace::small();
        let out = p.explore(&Explorer::default(), &space);
        assert_eq!(out.len(), space.designs().len());
        assert!(out.iter().all(|c| c.per_kernel.len() == 2));
    }

    #[test]
    fn as_records_preserves_metrics() {
        let p = two_kernel_program();
        let out = p.explore(&Explorer::default(), &DesignSpace::small());
        let recs = as_records(&out);
        assert_eq!(recs.len(), out.len());
        assert_eq!(recs[0].energy_nj, out[0].energy_nj);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_composite_panics() {
        let _ = CompositeProgram::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_trip_count_panics() {
        let _ = CompositeProgram::new("zero", vec![(kernels::matadd(6), 0)]);
    }

    #[test]
    #[should_panic(expected = "share one design")]
    fn mismatched_designs_panic() {
        let p = two_kernel_program();
        let eval = Evaluator::default();
        let r1 = eval.evaluate(&p.components[0].0, CacheDesign::new(64, 8, 1, 1));
        let r2 = eval.evaluate(&p.components[1].0, CacheDesign::new(32, 8, 1, 1));
        let _ = p.aggregate(vec![r1, r2]);
    }
}
