//! Sweep instrumentation.
//!
//! [`SweepTelemetry`] is filled in by
//! [`Explorer::explore_with_telemetry`](crate::Explorer::explore_with_telemetry)
//! and reports what the trace-once engine actually did: how many layouts
//! and traces were materialized, how many simulated events were served
//! from the shared [`memsim::TraceArena`] instead of regenerated, where
//! the wall time went per phase, and how evenly the work-stealing workers
//! were loaded. The `memx explore --telemetry` flag and the
//! `bench_explore` harness both print it; `BENCH_explore.json` embeds the
//! [`to_json`](SweepTelemetry::to_json) form.

use crate::obs::{json_f64, LatencySummary};
use std::fmt;
use std::time::Duration;

/// Version stamp of the [`SweepTelemetry::to_json`] layout, emitted as
/// its first field so downstream consumers can detect schema changes.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 5;

/// Counters and timings of one design-space sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepTelemetry {
    /// Number of design points evaluated (length of the record list).
    pub designs_evaluated: usize,
    /// Distinct `(T, L)` off-chip layouts computed.
    pub layouts_computed: usize,
    /// Distinct (layout value, tiling) traces materialized into the arena.
    pub traces_generated: usize,
    /// Total events generated into the arena (each exactly once).
    pub trace_events_generated: u64,
    /// Total events replayed by simulations, counted *logically*: every
    /// design consumes its whole span, so this is events × designs even
    /// when the fused engine scans the span once for many designs.
    pub trace_events_replayed: u64,
    /// Total events *physically* streamed from the arena. Equal to
    /// [`trace_events_replayed`](Self::trace_events_replayed) for the
    /// per-design engine; with the fused engine each trace group is
    /// scanned once regardless of bank width, so this is smaller by
    /// [`trace_events_avoided`](Self::trace_events_avoided).
    pub trace_events_scanned: u64,
    /// Trace groups the fused engine scheduled (one arena slice plus the
    /// bank of designs replaying it). 0 for the per-design engine.
    pub fused_groups: usize,
    /// Widest design bank stepped in lockstep by the fused engine
    /// (0 for the per-design engine).
    pub max_bank_width: usize,
    /// Trace groups resolved in closed form by the analytic fast path —
    /// bit-identical records, no replay (0 when disabled or when no
    /// group qualified).
    pub analytic_groups: usize,
    /// Trace groups that replayed through a `memsim::ReplayBank`.
    pub simulated_groups: usize,
    /// Raw bytes of the materialized trace arena.
    pub arena_bytes: u64,
    /// Resident bytes of the delta-compressed replay form (0 when replay
    /// streamed from the raw arena).
    pub arena_compressed_bytes: u64,
    /// Worker threads used by the sweep.
    pub workers: usize,
    /// Wall time of the layout phase (off-chip placement per `(T, L)`).
    pub layout_time: Duration,
    /// Wall time of the trace-materialization phase.
    pub trace_time: Duration,
    /// Wall time classifying trace groups for the analytic fast path
    /// (zero when the fast path is disabled or never gated in).
    pub classify_time: Duration,
    /// Wall time delta-compressing trace slices for streamed replay.
    pub compress_time: Duration,
    /// Wall time of the work-stealing simulation phase.
    pub simulate_time: Duration,
    /// Wall time of result collection into sweep order.
    pub select_time: Duration,
    /// End-to-end wall time of the sweep.
    pub total_time: Duration,
    /// Per-worker busy time during the simulation phase.
    pub worker_busy: Vec<Duration>,
    /// Designs skipped by the admissible branch-and-bound pruner without
    /// simulation (0 for exhaustive sweeps).
    pub designs_pruned: usize,
    /// Pareto-frontier size, when the sweep extracted one (0 otherwise).
    pub frontier_size: usize,
    /// Wall time spent computing admissible bounds and dominance checks
    /// (zero for exhaustive sweeps).
    pub bound_time: Duration,
    /// Designs quarantined by the supervisor after panicking on every
    /// available engine (0 for unsupervised sweeps).
    pub designs_quarantined: usize,
    /// Designs re-run on the per-design fallback engine after their
    /// fused bank scan panicked.
    pub designs_retried: usize,
    /// Checkpoint flushes that reached the sidecar file.
    pub checkpoints_written: usize,
    /// Checkpoint flushes that failed (the sweep continues; the previous
    /// checkpoint stays intact on disk).
    pub checkpoints_failed: usize,
    /// Records loaded from a resumed checkpoint instead of simulated.
    pub records_resumed: usize,
    /// True when a cooperative deadline cancelled the sweep, leaving a
    /// well-formed partial result.
    pub cancelled: bool,
    /// Largest chunk buffer (in bytes of [`memsim::TraceEvent`]) any one
    /// worker held resident while streaming an external trace — total
    /// streaming memory is bounded by this times `workers`. 0 for
    /// arena-based (materialized) sweeps.
    pub peak_chunk_bytes: u64,
    /// Shard attempts dispatched by a distributed coordinator, counting
    /// retries and speculative re-dispatches (0 for single-process
    /// sweeps).
    pub shards_dispatched: usize,
    /// Shard attempts relaunched after a worker loss, timeout, or
    /// corrupt result stream.
    pub shards_retried: usize,
    /// Speculative attempts launched against stragglers (stale
    /// heartbeats) while the original was still running.
    pub shards_redispatched: usize,
    /// Duplicate result entries discarded by the first-complete-wins
    /// merge (a late or speculative attempt re-reporting a filled slot).
    pub shard_entries_deduped: u64,
    /// Worker slots the coordinator still trusted when the sweep
    /// finished (0 for single-process sweeps; equal to the starting
    /// slot count when nothing died permanently).
    pub workers_surviving: usize,
    /// Per-unit layout placement latency (one sample per `(T, L)` pair).
    pub layout_latency: LatencySummary,
    /// Per-design simulation latency (per-design engine and supervisor
    /// fallbacks).
    pub design_latency: LatencySummary,
    /// Trace-group scan latency (fused engine, one sample per bank).
    pub scan_latency: LatencySummary,
    /// Checkpoint flush latency (supervised sweeps).
    pub flush_latency: LatencySummary,
}

impl SweepTelemetry {
    /// Events served from the arena beyond their first generation —
    /// the work the trace-once engine avoided.
    pub fn trace_events_reused(&self) -> u64 {
        self.trace_events_replayed
            .saturating_sub(self.trace_events_generated)
    }

    /// Replayed / generated event ratio (1.0 = no reuse; higher is
    /// better). Returns 1.0 for an empty sweep.
    pub fn trace_reuse_factor(&self) -> f64 {
        if self.trace_events_generated == 0 {
            return 1.0;
        }
        self.trace_events_replayed as f64 / self.trace_events_generated as f64
    }

    /// Events the fused one-pass replay avoided streaming: logical
    /// replays minus physical scans (0 for the per-design engine).
    pub fn trace_events_avoided(&self) -> u64 {
        self.trace_events_replayed
            .saturating_sub(self.trace_events_scanned)
    }

    /// Mean designs per trace group (1.0 when the sweep ran per-design or
    /// was empty) — how much lockstep the fused engine achieved.
    pub fn mean_bank_width(&self) -> f64 {
        if self.fused_groups == 0 {
            return 1.0;
        }
        self.designs_evaluated as f64 / self.fused_groups as f64
    }

    /// Designs considered by the sweep: simulated plus pruned.
    pub fn designs_considered(&self) -> usize {
        self.designs_evaluated + self.designs_pruned
    }

    /// Fraction of considered designs the pruner skipped (0.0 for an
    /// exhaustive or empty sweep).
    pub fn prune_rate(&self) -> f64 {
        let total = self.designs_considered();
        if total == 0 {
            0.0
        } else {
            self.designs_pruned as f64 / total as f64
        }
    }

    /// Mean fraction of the simulation phase each worker spent busy
    /// (1.0 = perfectly balanced). Returns 1.0 when the phase was empty.
    ///
    /// The *true* ratio is returned, including values above 1.0 — which
    /// can only come from busy-time overcounting and used to be silently
    /// clamped away. Clamping is a display concern
    /// ([`Display`](fmt::Display) caps its percentage at 100%); the
    /// sweep engines `debug_assert!` that this stays ≤ 1 so overcounting
    /// bugs fail loudly instead of masquerading as full utilization.
    pub fn worker_utilization(&self) -> f64 {
        let wall = self.simulate_time.as_secs_f64();
        if wall <= 0.0 || self.worker_busy.is_empty() {
            return 1.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        busy / (wall * self.worker_busy.len() as f64)
    }

    /// JSON rendering (no external dependencies), embedded in
    /// `BENCH_explore.json`. Scalar counters are flat; the per-unit
    /// latency summaries are nested objects. Every float goes through a
    /// finite guard ([`json_f64`]) — non-finite values render as `null`
    /// instead of the invalid-JSON `NaN`/`inf` that `{:.3}` would emit.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema_version\":{},",
                "\"designs_evaluated\":{},\"layouts_computed\":{},",
                "\"traces_generated\":{},\"trace_events_generated\":{},",
                "\"trace_events_replayed\":{},\"trace_events_reused\":{},",
                "\"trace_events_scanned\":{},\"trace_events_avoided\":{},",
                "\"fused_groups\":{},\"max_bank_width\":{},",
                "\"analytic_groups\":{},\"simulated_groups\":{},",
                "\"arena_bytes\":{},\"arena_compressed_bytes\":{},",
                "\"trace_reuse_factor\":{},\"workers\":{},",
                "\"worker_utilization\":{},\"designs_pruned\":{},",
                "\"prune_rate\":{},\"frontier_size\":{},",
                "\"designs_quarantined\":{},\"designs_retried\":{},",
                "\"checkpoints_written\":{},\"checkpoints_failed\":{},",
                "\"records_resumed\":{},\"cancelled\":{},",
                "\"peak_chunk_bytes\":{},",
                "\"shards_dispatched\":{},\"shards_retried\":{},",
                "\"shards_redispatched\":{},\"shard_entries_deduped\":{},",
                "\"workers_surviving\":{},",
                "\"layout_secs\":{},\"trace_secs\":{},",
                "\"classify_secs\":{},\"compress_secs\":{},",
                "\"bound_secs\":{},\"simulate_secs\":{},",
                "\"select_secs\":{},\"total_secs\":{},",
                "\"layout_latency\":{},\"design_latency\":{},",
                "\"scan_latency\":{},\"flush_latency\":{}}}"
            ),
            TELEMETRY_SCHEMA_VERSION,
            self.designs_evaluated,
            self.layouts_computed,
            self.traces_generated,
            self.trace_events_generated,
            self.trace_events_replayed,
            self.trace_events_reused(),
            self.trace_events_scanned,
            self.trace_events_avoided(),
            self.fused_groups,
            self.max_bank_width,
            self.analytic_groups,
            self.simulated_groups,
            self.arena_bytes,
            self.arena_compressed_bytes,
            json_f64(self.trace_reuse_factor(), 3),
            self.workers,
            json_f64(self.worker_utilization(), 3),
            self.designs_pruned,
            json_f64(self.prune_rate(), 3),
            self.frontier_size,
            self.designs_quarantined,
            self.designs_retried,
            self.checkpoints_written,
            self.checkpoints_failed,
            self.records_resumed,
            self.cancelled,
            self.peak_chunk_bytes,
            self.shards_dispatched,
            self.shards_retried,
            self.shards_redispatched,
            self.shard_entries_deduped,
            self.workers_surviving,
            json_f64(self.layout_time.as_secs_f64(), 6),
            json_f64(self.trace_time.as_secs_f64(), 6),
            json_f64(self.classify_time.as_secs_f64(), 6),
            json_f64(self.compress_time.as_secs_f64(), 6),
            json_f64(self.bound_time.as_secs_f64(), 6),
            json_f64(self.simulate_time.as_secs_f64(), 6),
            json_f64(self.select_time.as_secs_f64(), 6),
            json_f64(self.total_time.as_secs_f64(), 6),
            self.layout_latency.to_json(),
            self.design_latency.to_json(),
            self.scan_latency.to_json(),
            self.flush_latency.to_json(),
        )
    }
}

impl fmt::Display for SweepTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sweep: {} designs on {} workers in {:.1} ms",
            self.designs_evaluated,
            self.workers,
            self.total_time.as_secs_f64() * 1e3
        )?;
        writeln!(
            f,
            "  layout   : {} (T, L) placements in {:.1} ms",
            self.layouts_computed,
            self.layout_time.as_secs_f64() * 1e3
        )?;
        writeln!(
            f,
            "  trace    : {} layout x tiling traces, {} events generated once in {:.1} ms",
            self.traces_generated,
            self.trace_events_generated,
            self.trace_time.as_secs_f64() * 1e3
        )?;
        if self.designs_pruned > 0 || self.bound_time > Duration::ZERO {
            writeln!(
                f,
                "  prune    : {} of {} designs pruned ({:.0}%) in {:.1} ms",
                self.designs_pruned,
                self.designs_considered(),
                self.prune_rate() * 100.0,
                self.bound_time.as_secs_f64() * 1e3
            )?;
        }
        writeln!(
            f,
            "  simulate : {} events replayed ({:.1}x reuse) in {:.1} ms, {:.0}% worker utilization",
            self.trace_events_replayed,
            self.trace_reuse_factor(),
            self.simulate_time.as_secs_f64() * 1e3,
            self.worker_utilization().min(1.0) * 100.0
        )?;
        for (name, s) in [
            ("latency scan", &self.scan_latency),
            ("latency sim", &self.design_latency),
            ("latency lay", &self.layout_latency),
            ("latency ckpt", &self.flush_latency),
        ] {
            if s.count > 0 {
                writeln!(f, "  {name}: {s}")?;
            }
        }
        if self.fused_groups > 0 {
            writeln!(
                f,
                "  fused    : {} trace groups (mean bank {:.1}, max {}), {} events scanned, {} avoided",
                self.fused_groups,
                self.mean_bank_width(),
                self.max_bank_width,
                self.trace_events_scanned,
                self.trace_events_avoided()
            )?;
        }
        if self.analytic_groups > 0 {
            writeln!(
                f,
                "  analytic : {} trace groups closed-form ({} simulated) in {:.1} ms",
                self.analytic_groups,
                self.simulated_groups,
                self.classify_time.as_secs_f64() * 1e3
            )?;
        }
        if self.arena_compressed_bytes > 0 {
            writeln!(
                f,
                "  arena    : {} B raw -> {} B compressed ({:.1}x) in {:.1} ms",
                self.arena_bytes,
                self.arena_compressed_bytes,
                self.arena_bytes as f64 / self.arena_compressed_bytes.max(1) as f64,
                self.compress_time.as_secs_f64() * 1e3
            )?;
        }
        if self.frontier_size > 0 {
            writeln!(
                f,
                "  frontier : {} non-dominated designs",
                self.frontier_size
            )?;
        }
        if self.designs_quarantined > 0 || self.designs_retried > 0 {
            writeln!(
                f,
                "  isolate  : {} designs quarantined, {} retried on the per-design fallback",
                self.designs_quarantined, self.designs_retried
            )?;
        }
        if self.checkpoints_written > 0 || self.checkpoints_failed > 0 || self.records_resumed > 0 {
            writeln!(
                f,
                "  ckpt     : {} flushes written, {} failed, {} records resumed",
                self.checkpoints_written, self.checkpoints_failed, self.records_resumed
            )?;
        }
        if self.shards_dispatched > 0 {
            writeln!(
                f,
                "  shard    : {} dispatched ({} retried, {} re-dispatched), {} duplicate entries deduped, {} of {} workers surviving",
                self.shards_dispatched,
                self.shards_retried,
                self.shards_redispatched,
                self.shard_entries_deduped,
                self.workers_surviving,
                self.workers
            )?;
        }
        if self.peak_chunk_bytes > 0 {
            writeln!(
                f,
                "  stream   : peak resident chunk {} B per worker ({} B across {} workers)",
                self.peak_chunk_bytes,
                self.peak_chunk_bytes * self.workers as u64,
                self.workers
            )?;
        }
        if self.cancelled {
            writeln!(f, "  deadline : sweep cancelled, result is partial")?;
        }
        write!(
            f,
            "  select   : records collected in {:.1} ms",
            self.select_time.as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepTelemetry {
        SweepTelemetry {
            designs_evaluated: 8,
            layouts_computed: 2,
            traces_generated: 4,
            trace_events_generated: 100,
            trace_events_replayed: 400,
            workers: 2,
            layout_time: Duration::from_millis(10),
            trace_time: Duration::from_millis(5),
            simulate_time: Duration::from_millis(20),
            select_time: Duration::from_millis(1),
            total_time: Duration::from_millis(36),
            worker_busy: vec![Duration::from_millis(18), Duration::from_millis(20)],
            ..SweepTelemetry::default()
        }
    }

    #[test]
    fn reuse_accounting() {
        let t = sample();
        assert_eq!(t.trace_events_reused(), 300);
        assert!((t.trace_reuse_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let t = sample();
        let u = t.worker_utilization();
        assert!(u > 0.9 && u <= 1.0, "utilization {u}");
        assert_eq!(SweepTelemetry::default().worker_utilization(), 1.0);
    }

    #[test]
    fn utilization_reports_overcounting_instead_of_clamping() {
        // Busy time exceeding wall x workers means overcounting; the true
        // ratio must surface (> 1.0) — only the display clamps.
        let mut t = sample();
        t.simulate_time = Duration::from_millis(10);
        t.worker_busy = vec![Duration::from_millis(15), Duration::from_millis(15)];
        let u = t.worker_utilization();
        assert!(u > 1.0, "clamped: {u}");
        assert!((u - 1.5).abs() < 1e-9, "{u}");
        // Display caps at 100%; JSON keeps the true ratio.
        assert!(t.to_string().contains("100% worker utilization"));
        assert!(t.to_json().contains("\"worker_utilization\":1.500"));
    }

    #[test]
    fn json_is_valid_and_carries_schema_version() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.starts_with("{\"schema_version\":"));
        assert!(j.contains("\"designs_evaluated\":8"));
        assert!(j.contains("\"trace_events_reused\":300"));
        let v = crate::obs::parse_json(&j).expect("telemetry json parses");
        assert_eq!(
            v.get("schema_version").and_then(crate::obs::Json::as_u64),
            Some(TELEMETRY_SCHEMA_VERSION)
        );
        assert!(v.get("scan_latency").is_some());
    }

    #[test]
    fn json_survives_non_finite_ratios() {
        // A zero-duration phase with busy workers yields a division whose
        // guard must hold; force non-finite values directly through the
        // float fields to prove the guard (hand-formatted `{:.3}` would
        // have emitted the invalid token `NaN`).
        let mut t = sample();
        t.trace_events_generated = 0;
        t.trace_events_replayed = u64::MAX;
        let j = t.to_json();
        crate::obs::parse_json(&j).expect("json with extreme counters parses");
        assert_eq!(crate::obs::json_f64(f64::NAN, 3), "null");
    }

    #[test]
    fn latency_summaries_render_in_json_and_display() {
        let mut t = sample();
        let h = crate::obs::LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(900));
        t.scan_latency = h.summary();
        let j = t.to_json();
        let v = crate::obs::parse_json(&j).expect("parses");
        assert_eq!(
            v.get("scan_latency")
                .and_then(|s| s.get("count"))
                .and_then(crate::obs::Json::as_u64),
            Some(2)
        );
        let s = t.to_string();
        assert!(s.contains("latency scan"), "{s}");
        assert!(!s.contains("latency ckpt"), "{s}");
    }

    #[test]
    fn display_mentions_every_phase() {
        let s = sample().to_string();
        for phase in ["layout", "trace", "simulate", "select"] {
            assert!(s.contains(phase), "missing {phase} in {s}");
        }
    }

    #[test]
    fn empty_sweep_has_sane_ratios() {
        let t = SweepTelemetry::default();
        assert_eq!(t.trace_reuse_factor(), 1.0);
        assert_eq!(t.trace_events_reused(), 0);
        assert_eq!(t.prune_rate(), 0.0);
    }

    #[test]
    fn fused_accounting() {
        let mut t = sample();
        // Per-design run: scanned == replayed, nothing avoided.
        t.trace_events_scanned = t.trace_events_replayed;
        assert_eq!(t.trace_events_avoided(), 0);
        assert_eq!(t.mean_bank_width(), 1.0);
        // Fused run: 8 designs over 2 groups scanned 100 events once each.
        t.fused_groups = 2;
        t.max_bank_width = 6;
        t.trace_events_scanned = 100;
        assert_eq!(t.trace_events_avoided(), 300);
        assert!((t.mean_bank_width() - 4.0).abs() < 1e-12);
        let j = t.to_json();
        assert!(j.contains("\"trace_events_scanned\":100"));
        assert!(j.contains("\"trace_events_avoided\":300"));
        assert!(j.contains("\"fused_groups\":2"));
        assert!(j.contains("\"max_bank_width\":6"));
        crate::obs::parse_json(&j).expect("fused telemetry json parses");
    }

    #[test]
    fn display_shows_fused_line_only_for_fused_runs() {
        let plain = sample().to_string();
        assert!(!plain.contains("fused"));
        let mut t = sample();
        t.fused_groups = 3;
        t.max_bank_width = 4;
        t.trace_events_scanned = 120;
        let s = t.to_string();
        assert!(s.contains("fused    : 3 trace groups"), "{s}");
        assert!(s.contains("max 4"), "{s}");
    }

    #[test]
    fn prune_accounting() {
        let mut t = sample();
        t.designs_pruned = 24;
        assert_eq!(t.designs_considered(), 32);
        assert!((t.prune_rate() - 0.75).abs() < 1e-12);
        let j = t.to_json();
        assert!(j.contains("\"designs_pruned\":24"));
        assert!(j.contains("\"prune_rate\":0.750"));
        crate::obs::parse_json(&j).expect("pruned telemetry json parses");
    }

    #[test]
    fn supervisor_accounting() {
        let mut t = sample();
        t.designs_quarantined = 1;
        t.designs_retried = 4;
        t.checkpoints_written = 3;
        t.checkpoints_failed = 1;
        t.records_resumed = 120;
        t.cancelled = true;
        let j = t.to_json();
        for field in [
            "\"designs_quarantined\":1",
            "\"designs_retried\":4",
            "\"checkpoints_written\":3",
            "\"checkpoints_failed\":1",
            "\"records_resumed\":120",
            "\"cancelled\":true",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
        crate::obs::parse_json(&j).expect("supervisor telemetry json parses");
        let s = t.to_string();
        assert!(s.contains("isolate"), "{s}");
        assert!(s.contains("ckpt"), "{s}");
        assert!(s.contains("cancelled"), "{s}");
    }

    #[test]
    fn display_hides_supervisor_lines_for_plain_runs() {
        let s = sample().to_string();
        assert!(!s.contains("isolate"));
        assert!(!s.contains("ckpt"));
        assert!(!s.contains("deadline"));
        let j = sample().to_json();
        assert!(j.contains("\"cancelled\":false"));
    }

    #[test]
    fn shard_accounting() {
        let mut t = sample();
        t.shards_dispatched = 11;
        t.shards_retried = 2;
        t.shards_redispatched = 1;
        t.shard_entries_deduped = 53;
        t.workers_surviving = 3;
        t.workers = 4;
        let j = t.to_json();
        for field in [
            "\"shards_dispatched\":11",
            "\"shards_retried\":2",
            "\"shards_redispatched\":1",
            "\"shard_entries_deduped\":53",
            "\"workers_surviving\":3",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
        crate::obs::parse_json(&j).expect("shard telemetry json parses");
        let s = t.to_string();
        assert!(s.contains("shard    : 11 dispatched"), "{s}");
        assert!(s.contains("3 of 4 workers surviving"), "{s}");
        // Single-process sweeps never show the shard line.
        assert!(!sample().to_string().contains("shard    :"));
    }

    #[test]
    fn stream_accounting() {
        let mut t = sample();
        t.peak_chunk_bytes = 1 << 20;
        let j = t.to_json();
        assert!(j.contains("\"peak_chunk_bytes\":1048576"));
        crate::obs::parse_json(&j).expect("stream telemetry json parses");
        assert!(t.to_string().contains("stream"), "{t}");
        assert!(!sample().to_string().contains("stream"));
    }

    #[test]
    fn display_shows_prune_and_frontier_only_when_present() {
        let plain = sample().to_string();
        assert!(!plain.contains("prune"));
        assert!(!plain.contains("frontier"));
        let mut t = sample();
        t.designs_pruned = 5;
        t.frontier_size = 7;
        let s = t.to_string();
        assert!(s.contains("prune"), "{s}");
        assert!(s.contains("frontier : 7"), "{s}");
    }
}
