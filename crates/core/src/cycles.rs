//! The paper's processor-cycle model (§2.2).
//!
//! Adopted from Hennessy & Patterson (the paper's \[10\]):
//!
//! * cycles per hit grow slightly with associativity (longer hit path):
//!   1, 1.1, 1.12, 1.14 for 1-, 2-, 4-, 8-way, extrapolated with the same
//!   +0.02 step to 1.16, 1.18, 1.20 for 16-, 32-, 64-way so the expansive
//!   search grids stay inside the model;
//! * cycles per miss grow with line size (longer refill):
//!   40, 40, 42, 44, 48, 56, 72 for lines of 4…256 bytes, continuing the
//!   doubling-increment pattern with 104, 168 for 512- and 1024-byte lines;
//! * tiling adds its loop overhead to the miss path:
//!
//! ```text
//! cycles = hit_rate·trip_count·(cycles per hit)
//!        + miss_rate·trip_count·(tiling size + cycles per miss)
//! ```

/// The cycle model with the paper's constants.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CycleModel;

impl CycleModel {
    /// Cycles per hit for a given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is not a power of two in `1..=64` (the paper caps
    /// `S ≤ 8`; the extended entries serve the expansive search grids).
    pub fn cycles_per_hit(&self, assoc: usize) -> f64 {
        match assoc {
            1 => 1.0,
            2 => 1.1,
            4 => 1.12,
            8 => 1.14,
            16 => 1.16,
            32 => 1.18,
            64 => 1.20,
            _ => panic!("associativity {assoc} outside the model's 1..=64 range"),
        }
    }

    /// Cycles per miss for a given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line` is not a power of two in `4..=1024`.
    pub fn cycles_per_miss(&self, line: usize) -> f64 {
        match line {
            4 => 40.0,
            8 => 40.0,
            16 => 42.0,
            32 => 44.0,
            64 => 48.0,
            128 => 56.0,
            256 => 72.0,
            512 => 104.0,
            1024 => 168.0,
            _ => panic!("line size {line} outside the model's 4..=1024 range"),
        }
    }

    /// Total cycles from hit/miss counts.
    ///
    /// `tiling` is the paper's tiling size `B` (use 1 when untiled).
    pub fn cycles_from_counts(
        &self,
        hits: u64,
        misses: u64,
        assoc: usize,
        line: usize,
        tiling: u64,
    ) -> f64 {
        hits as f64 * self.cycles_per_hit(assoc)
            + misses as f64 * (tiling as f64 + self.cycles_per_miss(line))
    }

    /// Total cycles from rates and a trip count (the paper's exact formula).
    ///
    /// # Panics
    ///
    /// Panics if `miss_rate` is outside `[0, 1]`.
    pub fn cycles_from_rates(
        &self,
        miss_rate: f64,
        trip_count: u64,
        assoc: usize,
        line: usize,
        tiling: u64,
    ) -> f64 {
        assert!(
            (0.0..=1.0).contains(&miss_rate),
            "miss rate must be in [0, 1], got {miss_rate}"
        );
        let tc = trip_count as f64;
        (1.0 - miss_rate) * tc * self.cycles_per_hit(assoc)
            + miss_rate * tc * (tiling as f64 + self.cycles_per_miss(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_cycles_match_the_paper_table() {
        let m = CycleModel;
        assert_eq!(m.cycles_per_hit(1), 1.0);
        assert_eq!(m.cycles_per_hit(2), 1.1);
        assert_eq!(m.cycles_per_hit(4), 1.12);
        assert_eq!(m.cycles_per_hit(8), 1.14);
    }

    #[test]
    fn extended_hit_cycles_continue_the_step() {
        let m = CycleModel;
        assert_eq!(m.cycles_per_hit(16), 1.16);
        assert_eq!(m.cycles_per_hit(32), 1.18);
        assert_eq!(m.cycles_per_hit(64), 1.20);
    }

    #[test]
    fn miss_cycles_match_the_paper_table() {
        let m = CycleModel;
        for (l, c) in [
            (4, 40.0),
            (8, 40.0),
            (16, 42.0),
            (32, 44.0),
            (64, 48.0),
            (128, 56.0),
            (256, 72.0),
            (512, 104.0),
            (1024, 168.0),
        ] {
            assert_eq!(m.cycles_per_miss(l), c);
        }
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn beyond_sixty_four_way_is_out_of_model() {
        let _ = CycleModel.cycles_per_hit(128);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn two_byte_line_is_out_of_model() {
        let _ = CycleModel.cycles_per_miss(2);
    }

    #[test]
    fn counts_and_rates_agree() {
        let m = CycleModel;
        let (hits, misses) = (900u64, 100u64);
        let from_counts = m.cycles_from_counts(hits, misses, 2, 16, 4);
        let from_rates = m.cycles_from_rates(0.1, 1000, 2, 16, 4);
        assert!((from_counts - from_rates).abs() < 1e-9);
    }

    #[test]
    fn tiling_adds_to_the_miss_path_only() {
        let m = CycleModel;
        let untiled = m.cycles_from_counts(100, 10, 1, 8, 1);
        let tiled = m.cycles_from_counts(100, 10, 1, 8, 9);
        assert!((tiled - untiled - 10.0 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn all_hit_run_is_one_cycle_per_access() {
        let m = CycleModel;
        assert_eq!(m.cycles_from_counts(1234, 0, 1, 4, 1), 1234.0);
    }
}
