//! Scratchpad-memory (SPM) partitioning — the companion technique of the
//! paper's own reference \[2\] (Panda, Dutt & Nicolau, ISSS'97).
//!
//! Instead of letting every array contend for the cache, part of the on-chip
//! budget can be a directly-addressed scratchpad holding the most profitable
//! arrays: SPM accesses never miss, cost one cycle, and burn only the cell
//! array (no tags, no miss path). The remaining arrays go through a smaller
//! cache. This module:
//!
//! * counts per-array read traffic ([`array_read_counts`]),
//! * picks the array subset maximising diverted traffic under the SPM
//!   capacity (exact subset enumeration — kernels have a handful of arrays),
//! * evaluates a (SPM size, cache design) split end-to-end
//!   ([`evaluate_split`]), and
//! * sweeps the on-chip budget across SPM/cache splits
//!   ([`explore_split`]).
//!
//! # Example
//!
//! ```
//! use loopir::kernels;
//! use memexplore::spm::{best_split, explore_split};
//! use memexplore::Evaluator;
//!
//! // Dequant's qtable fits a small scratchpad and is reused every block.
//! let kernel = kernels::dequant(31);
//! let records = explore_split(&kernel, 4096, &Evaluator::default());
//! assert!(!records.is_empty());
//! let best = best_split(&records).expect("non-empty");
//! assert!(best.energy_nj > 0.0);
//! ```

use crate::explore::{pow2_range, DesignSpace, Explorer};
use crate::metrics::{CacheDesign, Evaluator, Record};
use crate::select;
use loopir::{AccessKind, ArrayId, Kernel, TraceGen};
use memsim::{Simulator, TraceEvent};

/// Per-array read traffic of one kernel execution.
///
/// Returned in `ArrayId` order; counts come from the exact trace.
pub fn array_read_counts(kernel: &Kernel) -> Vec<(ArrayId, u64)> {
    let layout = loopir::DataLayout::natural(kernel);
    let mut counts = vec![0u64; kernel.arrays.len()];
    for a in TraceGen::new(kernel, &layout) {
        if a.kind == AccessKind::Read {
            counts[a.array.0] += 1;
        }
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (ArrayId(i), c))
        .collect()
}

/// Which arrays live in the scratchpad.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpmAssignment {
    /// Arrays placed in the SPM.
    pub arrays: Vec<ArrayId>,
    /// Bytes of SPM they occupy.
    pub bytes_used: u64,
    /// Read accesses diverted from the cache per kernel execution.
    pub diverted_reads: u64,
}

/// Chooses the array subset with maximum diverted reads that fits in
/// `spm_bytes` (exact enumeration over the ≤ 2^n subsets; kernels declare a
/// handful of arrays). Ties prefer fewer bytes.
pub fn choose_arrays(kernel: &Kernel, spm_bytes: u64) -> SpmAssignment {
    let counts = array_read_counts(kernel);
    let sizes: Vec<u64> = kernel.arrays.iter().map(|a| a.byte_size() as u64).collect();
    let n = kernel.arrays.len();
    assert!(n <= 20, "subset enumeration caps at 20 arrays");
    let mut best = SpmAssignment {
        arrays: Vec::new(),
        bytes_used: 0,
        diverted_reads: 0,
    };
    for mask in 0u32..(1 << n) {
        let mut bytes = 0u64;
        let mut reads = 0u64;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                bytes += sizes[i];
                reads += counts[i].1;
            }
        }
        if bytes <= spm_bytes
            && (reads > best.diverted_reads
                || (reads == best.diverted_reads && bytes < best.bytes_used))
        {
            best = SpmAssignment {
                arrays: (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(ArrayId)
                    .collect(),
                bytes_used: bytes,
                diverted_reads: reads,
            };
        }
    }
    best
}

/// One evaluated SPM/cache split.
#[derive(Clone, Debug)]
pub struct SpmRecord {
    /// SPM capacity in bytes.
    pub spm_bytes: u64,
    /// The arrays assigned to it.
    pub assignment: SpmAssignment,
    /// The cache side's design.
    pub cache_design: CacheDesign,
    /// Cache-side read miss rate.
    pub cache_miss_rate: f64,
    /// Total cycles (cache side + one per SPM read).
    pub cycles: f64,
    /// Total energy in nanojoules.
    pub energy_nj: f64,
}

/// Energy of one SPM read (nanojoules): the cell array of an `spm_bytes`
/// SRAM under the paper's `β·8·T` picojoule model — no tag or miss path.
pub fn spm_read_energy_nj(spm_bytes: u64) -> f64 {
    2.0 * 8.0 * spm_bytes as f64 / 1000.0
}

/// Evaluates one (SPM size, cache design) split: SPM arrays never touch the
/// cache; the rest are simulated through it with the evaluator's layout.
pub fn evaluate_split(
    kernel: &Kernel,
    spm_bytes: u64,
    cache_design: CacheDesign,
    evaluator: &Evaluator,
) -> SpmRecord {
    let assignment = choose_arrays(kernel, spm_bytes);
    let (layout, _) = evaluator.layout_for(kernel, cache_design.cache_size, cache_design.line);
    let config = cache_design
        .cache_config()
        .unwrap_or_else(|e| panic!("invalid design {cache_design}: {e}"));

    let mut sim = Simulator::with_options(config, evaluator.bus_encoding, false);
    let mut spm_reads = 0u64;
    for a in TraceGen::new(kernel, &layout).filter(|a| a.kind == AccessKind::Read) {
        if assignment.arrays.contains(&a.array) {
            spm_reads += 1;
        } else {
            sim.step(TraceEvent::read(a.addr, a.size));
        }
    }
    let report = sim.into_report();
    let cache_cycles = evaluator.cycle_model.cycles_from_counts(
        report.stats.read_hits,
        report.stats.read_misses(),
        cache_design.assoc,
        cache_design.line,
        cache_design.tiling,
    );
    let cache_energy = evaluator.energy_model.trace_energy_nj(&report);
    SpmRecord {
        spm_bytes,
        assignment,
        cache_design,
        cache_miss_rate: report.stats.read_miss_rate(),
        cycles: cache_cycles + spm_reads as f64,
        energy_nj: cache_energy + spm_reads as f64 * spm_read_energy_nj(spm_bytes),
    }
}

/// Sweeps SPM/cache splits of `total_budget` bytes: for each power-of-two
/// SPM share (including zero), the cache side is swept over the paper's
/// space capped at the remaining budget, and the minimum-energy cache design
/// is paired with the share.
///
/// # Panics
///
/// Panics if `total_budget < 32` or is not a power of two.
pub fn explore_split(
    kernel: &Kernel,
    total_budget: usize,
    evaluator: &Evaluator,
) -> Vec<SpmRecord> {
    assert!(
        total_budget >= 32 && total_budget.is_power_of_two(),
        "budget must be a power of two of at least 32 bytes"
    );
    let explorer = Explorer::new(evaluator.clone());
    let mut out = Vec::new();
    let mut spm_share = 0usize;
    loop {
        let remainder = total_budget - spm_share;
        if remainder < 16 {
            break;
        }
        let d_cap = if remainder.is_power_of_two() {
            remainder
        } else {
            remainder.next_power_of_two() / 2
        };
        let space = DesignSpace {
            cache_sizes: pow2_range(16, d_cap),
            ..DesignSpace::paper()
        };
        let records = explorer.explore(kernel, &space);
        if let Some(best) = select::min_energy(&records) {
            out.push(evaluate_split(
                kernel,
                spm_share as u64,
                best.design,
                evaluator,
            ));
        }
        spm_share = if spm_share == 0 { 16 } else { spm_share * 2 };
        if spm_share >= total_budget {
            break;
        }
    }
    out
}

/// The minimum-energy split of a sweep.
pub fn best_split(records: &[SpmRecord]) -> Option<&SpmRecord> {
    records
        .iter()
        .min_by(|a, b| a.energy_nj.partial_cmp(&b.energy_nj).expect("finite"))
}

/// Converts an [`SpmRecord`] into a plain [`Record`] for the `select`
/// helpers (trip count unavailable, conflict-free flag dropped).
pub fn as_record(r: &SpmRecord) -> Record {
    Record {
        design: r.cache_design,
        miss_rate: r.cache_miss_rate,
        cycles: r.cycles,
        energy_nj: r.energy_nj,
        trip_count: 0,
        conflict_free: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn read_counts_match_reference_structure() {
        // Dequant reads coeff and qtable once per iteration, never out.
        let counts = array_read_counts(&kernels::dequant(31));
        assert_eq!(counts[0].1, 961);
        assert_eq!(counts[1].1, 961);
        assert_eq!(counts[2].1, 0);
    }

    #[test]
    fn chooser_is_an_exact_knapsack() {
        // FIR: x is large and hot (n*taps reads), h is tiny and hot, y cold.
        let kernel = kernels::fir(64, 16);
        // Budget for h (64 B) but not x: picks h.
        let a = choose_arrays(&kernel, 100);
        assert_eq!(a.arrays, vec![ArrayId(1)]);
        assert_eq!(a.diverted_reads, 64 * 16);
        // Unlimited budget: everything with reads goes in.
        let all = choose_arrays(&kernel, 1 << 20);
        assert!(all.diverted_reads >= 2 * 64 * 16);
    }

    #[test]
    fn spm_diverts_traffic_and_lowers_cache_pressure() {
        let kernel = kernels::dequant(31);
        let eval = Evaluator::default();
        let d = CacheDesign::new(64, 8, 1, 1);
        let no_spm = evaluate_split(&kernel, 0, d, &eval);
        let with_spm = evaluate_split(&kernel, 4096, d, &eval);
        assert_eq!(no_spm.assignment.diverted_reads, 0);
        assert!(with_spm.assignment.diverted_reads > 0);
        assert!(with_spm.cycles < no_spm.cycles);
    }

    #[test]
    fn split_sweep_covers_zero_and_power_of_two_shares() {
        let kernel = kernels::matadd(6);
        let records = explore_split(&kernel, 256, &Evaluator::default());
        let shares: Vec<u64> = records.iter().map(|r| r.spm_bytes).collect();
        assert!(shares.contains(&0));
        assert!(shares.iter().all(|&s| s == 0 || s.is_power_of_two()));
        assert!(best_split(&records).is_some());
    }

    #[test]
    fn spm_energy_scales_with_its_size() {
        assert!(spm_read_energy_nj(1024) > spm_read_energy_nj(64));
        assert!((spm_read_energy_nj(64) - 1.024).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_budget_panics() {
        let _ = explore_split(&kernels::matadd(6), 100, &Evaluator::default());
    }
}
