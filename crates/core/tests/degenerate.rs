//! Degenerate-configuration edge cases for the evaluator and the Pareto
//! engines.
//!
//! The paper grid never reaches these corners (it requires ≥ 4 lines and
//! kernels always read something), so they get dedicated coverage:
//! single-line caches (`T == L`), fully associative caches
//! (`S == T / L`), tilings as large as the loop itself (a single tile),
//! and kernels whose read trace is empty.

use loopir::transform::tile_all;
use loopir::DataLayout;
use loopir::{kernels, AffineExpr, ArrayDecl, ArrayId, ArrayRef, Kernel, Loop, LoopNest};
use memexplore::metrics::read_trace;
use memexplore::{CacheDesign, DesignSpace, Evaluator, Explorer};

/// A kernel that only writes — its read trace is empty.
fn write_only_kernel() -> Kernel {
    let arrays = vec![ArrayDecl::new("out", &[8, 8], 4)];
    let refs = vec![ArrayRef::write(
        ArrayId(0),
        vec![AffineExpr::var(0), AffineExpr::var(1)],
    )];
    Kernel::new(
        "WriteOnly",
        arrays,
        LoopNest {
            loops: vec![Loop::new(0, 7), Loop::new(0, 7)],
            refs,
        },
    )
}

#[test]
fn single_line_cache_evaluates_sanely() {
    // T == L: one line, no index bits, every distinct line conflicts.
    let kernel = kernels::dequant(15);
    let record = Evaluator::default().evaluate(&kernel, CacheDesign::new(16, 16, 1, 1));
    assert!(record.miss_rate > 0.0 && record.miss_rate <= 1.0);
    assert!(record.cycles > 0.0 && record.cycles.is_finite());
    assert!(record.energy_nj > 0.0 && record.energy_nj.is_finite());
}

#[test]
fn fully_associative_never_misses_more_than_direct_mapped() {
    // S == T / L removes all conflict misses; with LRU (a stack
    // algorithm) the miss count can only drop relative to direct-mapped.
    let kernel = kernels::sor(15);
    let evaluator = Evaluator::default();
    let direct = evaluator.evaluate(&kernel, CacheDesign::new(64, 8, 1, 1));
    let full = evaluator.evaluate(&kernel, CacheDesign::new(64, 8, 8, 1));
    assert!(full.miss_rate <= direct.miss_rate);
}

#[test]
fn tiling_covering_the_whole_loop_replays_the_untiled_trace() {
    // A tile at least as large as the loop extent is a single tile — the
    // iteration order, and therefore the trace, must be exactly the
    // untiled one.
    let kernel = kernels::matadd(6); // 6-iteration loops
    let layout = DataLayout::natural(&kernel);
    let untiled = read_trace(&kernel, &layout);
    for b in [8u64, 16, 1024] {
        let tiled = read_trace(&tile_all(&kernel, b), &layout);
        assert_eq!(untiled, tiled, "tile size {b} must be a single tile");
    }
}

#[test]
fn empty_read_trace_yields_zeroed_record() {
    let kernel = write_only_kernel();
    let record = Evaluator::default().evaluate(&kernel, CacheDesign::new(64, 8, 1, 1));
    assert_eq!(record.trip_count, 0);
    assert_eq!(record.miss_rate, 0.0);
    assert_eq!(record.cycles, 0.0);
    assert_eq!(record.energy_nj, 0.0);
}

#[test]
fn pareto_engines_agree_on_a_degenerate_space() {
    // min_lines == 1 admits T == L; assoc 8 reaches fully associative at
    // T/L == 8. The pruner must stay exact out here too.
    let space = DesignSpace {
        cache_sizes: vec![16, 32, 64],
        line_sizes: vec![8, 16],
        assocs: vec![1, 8],
        tilings: vec![1, 16],
        min_lines: 1,
        ..Default::default()
    };
    let kernel = kernels::dequant(15);
    let explorer = Explorer::default();
    let (exhaustive, _) = explorer.pareto_exhaustive(&kernel, &space);
    let (pruned, telemetry) = explorer.pareto_pruned(&kernel, &space);
    assert_eq!(exhaustive, pruned);
    assert_eq!(telemetry.designs_considered(), space.designs().len());
}

#[test]
fn pareto_engines_agree_on_an_empty_read_trace() {
    // Every design costs the same (zero), so the frontier collapses to
    // the smallest cache and the engines must agree on which records
    // survive the tie-break.
    let kernel = write_only_kernel();
    let space = DesignSpace::small();
    let explorer = Explorer::default();
    let (exhaustive, _) = explorer.pareto_exhaustive(&kernel, &space);
    let (pruned, _) = explorer.pareto_pruned(&kernel, &space);
    assert_eq!(exhaustive, pruned);
    assert!(!pruned.is_empty());
}
