//! Property tests for the trace-once, work-stealing sweep engine.
//!
//! Two invariants the engine must hold for *any* kernel and design list:
//!
//! * scheduling must be invisible — a work-stealing parallel sweep
//!   returns bit-identical records, in the same order, as a fully serial
//!   sweep of the same designs;
//! * memoization must be invisible — a trace interned in a
//!   [`TraceArena`] and replayed later is event-for-event identical to a
//!   trace generated fresh from the loop nest, and simulating either
//!   yields identical statistics.

use loopir::transform::tile_all;
use loopir::{AffineExpr, ArrayDecl, ArrayId, ArrayRef, Kernel, Loop, LoopNest};
use memexplore::metrics::read_trace;
use memexplore::{CacheDesign, Evaluator, Explorer};
use memsim::{CacheConfig, Simulator, TraceArena};
use proptest::prelude::*;

/// A random rectangular 2-D stencil kernel (same shape family as the
/// workspace-level `random_kernels` suite): 1–3 arrays, 2–6 references
/// with offsets in {-1, 0, 1}, loops over the interior.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    let dims = (5usize..12, 5usize..12);
    let n_arrays = 1usize..=3;
    let refs = proptest::collection::vec(
        (0usize..3, -1i64..=1, -1i64..=1, proptest::bool::ANY),
        2..=6,
    );
    (dims, n_arrays, refs).prop_map(|((rows, cols), n_arrays, refs)| {
        let arrays: Vec<ArrayDecl> = (0..n_arrays)
            .map(|i| ArrayDecl::new(format!("a{i}"), &[rows, cols], 4))
            .collect();
        let body: Vec<ArrayRef> = refs
            .into_iter()
            .map(|(aid, c0, c1, is_write)| {
                let subs = vec![AffineExpr::var(0) + c0, AffineExpr::var(1) + c1];
                let array = ArrayId(aid % n_arrays);
                if is_write {
                    ArrayRef::write(array, subs)
                } else {
                    ArrayRef::read(array, subs)
                }
            })
            .collect();
        let nest = LoopNest {
            loops: vec![Loop::new(1, rows as i64 - 2), Loop::new(1, cols as i64 - 2)],
            refs: body,
        };
        Kernel::new("random", arrays, nest)
    })
}

/// A random valid cache design: power-of-two geometry with `L ≤ T/2`,
/// `S ≤ T/L`, and `B ≤ T/L`, clamped rather than filtered so every drawn
/// tuple maps to a design.
fn arb_design() -> impl Strategy<Value = CacheDesign> {
    (4u32..=9, 2u32..=5, 0u32..=2, 0u32..=3).prop_map(|(t_exp, l_exp, s_exp, b_exp)| {
        let t = 1usize << t_exp;
        let l = (1usize << l_exp).min(t / 2);
        let lines = t / l;
        let s = (1usize << s_exp).min(lines);
        let b = (1u64 << b_exp).min(lines as u64);
        CacheDesign::new(t, l, s, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn work_stealing_sweep_is_bit_identical_to_serial(
        kernel in arb_kernel(),
        designs in proptest::collection::vec(arb_design(), 1..16),
    ) {
        let serial = Explorer::default()
            .with_workers(1)
            .explore_designs(&kernel, &designs);
        let stolen = Explorer::default()
            .with_workers(4)
            .explore_designs(&kernel, &designs);
        prop_assert_eq!(serial, stolen);
    }

    #[test]
    fn sweep_records_match_independent_evaluation(
        kernel in arb_kernel(),
        designs in proptest::collection::vec(arb_design(), 1..8),
    ) {
        let explorer = Explorer::default();
        let swept = explorer.explore_designs(&kernel, &designs);
        for (record, &design) in swept.iter().zip(&designs) {
            let lone = explorer.evaluator.evaluate(&kernel, design);
            prop_assert_eq!(record, &lone);
        }
    }

    #[test]
    fn arena_replay_equals_fresh_trace(
        kernel in arb_kernel(),
        design in arb_design(),
    ) {
        let evaluator = Evaluator::default();
        let (layout, _) = evaluator.layout_for(&kernel, design.cache_size, design.line);
        let tiled = tile_all(&kernel, design.tiling);
        let fresh = read_trace(&tiled, &layout);

        let mut arena: TraceArena<(usize, usize, u64)> = TraceArena::new();
        let key = (design.cache_size, design.line, design.tiling);
        arena.intern_with(key, || read_trace(&tiled, &layout));
        // A second intern must not regenerate or change the span.
        let replayed = arena.intern_with(key, || panic!("trace regenerated"));
        prop_assert_eq!(replayed, fresh.as_slice());

        let config = CacheConfig::new(design.cache_size, design.line, design.assoc)
            .expect("clamped geometry is valid");
        let from_arena = Simulator::simulate_slice(config, arena.get(&key).expect("interned"));
        let from_fresh = Simulator::simulate_slice(config, &fresh);
        prop_assert_eq!(from_arena.stats, from_fresh.stats);
        prop_assert_eq!(from_arena.cpu_bus, from_fresh.cpu_bus);
        prop_assert_eq!(from_arena.mem_bus, from_fresh.mem_bus);
    }
}
