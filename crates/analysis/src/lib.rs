//! Static reference analysis for the DAC'99 memory-exploration flow.
//!
//! Four pieces, mirroring the paper's §3 and §4.1 plus the rigorous bounds
//! the pruned sweep needs:
//!
//! * [`classes`] — partitions a kernel's array references into equivalence
//!   **classes** (same linear part `H`, same array) and **cases** (same `H`,
//!   different arrays), after Wolf & Lam's *uniformly generated* references.
//! * [`min_cache`] — the paper's closed-form minimum cache size: per class,
//!   `distance = ⌊|Δc| / stride⌋ + 1` lines spanning
//!   `⌊distance/L⌋ + 1 or 2` cache lines; the minimum cache is the sum
//!   across classes times the line size.
//! * [`placement`] — the off-chip memory assignment that pads array bases
//!   and row pitches so each class's leading element maps to its own cache
//!   line, eliminating conflict misses for compatible access patterns.
//! * [`bounds`] — exact trace footprints (split-access counts and distinct
//!   lines touched) giving admissible lower bounds on misses for
//!   branch-and-bound pruning of the design sweep.
//!
//! # Example
//!
//! ```
//! use analysis::classes::partition_classes;
//! use loopir::kernels;
//!
//! // Compress has two classes: {a[i-1,j-1], a[i-1,j]} and {a[i,j-1], a[i,j]}.
//! let k = kernels::compress(31);
//! let classes = partition_classes(&k, /*reads_only=*/ true);
//! assert_eq!(classes.len(), 2);
//! ```

pub mod bounds;
pub mod classes;
pub mod exact;
pub mod min_cache;
pub mod missrate;
pub mod placement;

pub use bounds::TraceFootprint;
pub use classes::{compatible, partition_cases, partition_classes, RefClass};
pub use min_cache::{class_line_requirement, MinCacheReport};
pub use missrate::{analytical_miss_rate, analytical_misses_per_iteration};
pub use placement::{optimize_layout, PlacementError, PlacementReport};
