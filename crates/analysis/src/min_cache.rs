//! The paper's minimum-cache-size bound (§3).
//!
//! For each reference class, compute
//!
//! ```text
//! distance = ⌊ |Δ constant vector| / loop stride ⌋ + 1
//! lines    = ⌊ distance / L ⌋ + 1   if distance mod L ∈ {0, 1}
//!          = ⌊ distance / L ⌋ + 2   otherwise
//! ```
//!
//! where `L` is the cache line size *in elements* and `Δ` is the spread of
//! the members' innermost constants. The minimum conflict-free cache holds
//! the sum across classes: `min size = total lines × line bytes`.
//!
//! For Compress with two classes of span 1 this gives 2 lines per class —
//! 4 lines total and a minimum cache of `4·L` bytes, exactly the paper's
//! Example 1.

use crate::classes::{partition_classes, RefClass};
use loopir::Kernel;

/// The innermost-loop stride used by the distance formula: the step of the
/// deepest loop with a non-zero coefficient in the class's `H`, or 1 if the
/// class is loop-invariant.
fn innermost_stride(kernel: &Kernel, class: &RefClass) -> i64 {
    let depth = kernel.nest.depth();
    // h is flattened (subscripts × depth); find the deepest driven loop.
    let deepest = (0..depth)
        .rev()
        .find(|&d| (0..class.h.len() / depth.max(1)).any(|s| class.h[s * depth + d] != 0));
    match deepest {
        Some(d) => kernel.nest.loops[d].step,
        None => 1,
    }
}

/// Number of cache lines class `class` needs, for a line of `line_elems`
/// elements (the paper's per-class formula).
///
/// # Panics
///
/// Panics if `line_elems` is zero.
pub fn class_line_requirement(kernel: &Kernel, class: &RefClass, line_elems: u64) -> u64 {
    assert!(line_elems > 0, "line size in elements must be > 0");
    let stride = innermost_stride(kernel, class).unsigned_abs();
    let span = class.element_span().unsigned_abs();
    let distance = span / stride.max(1) + 1;
    let rem = distance % line_elems;
    if rem <= 1 {
        distance / line_elems + 1
    } else {
        distance / line_elems + 2
    }
}

/// The minimum cache size analysis for one kernel at one line size.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MinCacheReport {
    /// Line size used, in bytes.
    pub line_bytes: u64,
    /// Per-class line requirements, in `partition_classes` order.
    pub lines_per_class: Vec<u64>,
    /// Total lines needed (sum across classes).
    pub total_lines: u64,
}

impl MinCacheReport {
    /// Runs the analysis. `line_bytes` must be a multiple of the element
    /// size of every referenced array (true throughout the paper, where all
    /// elements are 4-byte ints and lines are ≥ 4 bytes)... except that a
    /// line smaller than an element is clamped to one element.
    pub fn analyze(kernel: &Kernel, line_bytes: u64) -> Self {
        let classes = partition_classes(kernel, true);
        let lines_per_class: Vec<u64> = classes
            .iter()
            .map(|c| {
                let elem = kernel.array(c.array).elem_size as u64;
                let line_elems = (line_bytes / elem).max(1);
                class_line_requirement(kernel, c, line_elems)
            })
            .collect();
        let total_lines = lines_per_class.iter().sum();
        MinCacheReport {
            line_bytes,
            lines_per_class,
            total_lines,
        }
    }

    /// The minimum cache size in bytes (`total lines × line size`).
    pub fn min_cache_bytes(&self) -> u64 {
        self.total_lines * self.line_bytes
    }

    /// The smallest power-of-two cache size that satisfies the bound —
    /// what the MemExplore sweep can prune against.
    pub fn min_pow2_cache_bytes(&self) -> u64 {
        self.min_cache_bytes().next_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn compress_needs_four_lines_as_in_example_1() {
        // Paper: "The total number of cache lines is 4 (two cache lines for
        // references in class 1 and two for class 2). The minimum cache size
        // is 4·L." With L = 16 B = 4 elements: distance = 1/1 + 1 = 2;
        // 2 mod 4 = 2 -> lines = 0 + 2 = 2 per class.
        let k = kernels::compress(31);
        let r = MinCacheReport::analyze(&k, 16);
        assert_eq!(r.lines_per_class, vec![2, 2]);
        assert_eq!(r.total_lines, 4);
        assert_eq!(r.min_cache_bytes(), 64);
    }

    #[test]
    fn compress_bound_scales_with_line_size() {
        let k = kernels::compress(31);
        for line in [8u64, 16, 32, 64] {
            let r = MinCacheReport::analyze(&k, line);
            assert_eq!(r.total_lines, 4, "line={line}");
            assert_eq!(r.min_cache_bytes(), 4 * line);
        }
    }

    #[test]
    fn singleton_classes_need_one_or_two_lines() {
        // SOR row -1 and row +1 classes are singletons: distance = 1,
        // 1 mod L <= 1 -> 1 line when L > 1 element.
        let k = kernels::sor(31);
        let r = MinCacheReport::analyze(&k, 16);
        // Classes: row0 (span 2 -> distance 3; 3 mod 4 = 3 -> 0+2 = 2 lines),
        // row -1 (1 line), row +1 (1 line).
        assert_eq!(r.total_lines, 4);
    }

    #[test]
    fn four_byte_lines_use_single_element_lines() {
        // L = 4 B = 1 element: compress distance 2, 2 mod 1 = 0 -> 2/1+1 = 3
        // lines per class (the formula's conservative +1).
        let k = kernels::compress(31);
        let r = MinCacheReport::analyze(&k, 4);
        assert_eq!(r.lines_per_class, vec![3, 3]);
        assert_eq!(r.min_pow2_cache_bytes(), 32);
    }

    #[test]
    fn matadd_needs_one_line_per_array() {
        // Three compatible arrays, singleton classes: "the three different
        // arrays a, b and c can be assigned to three different cache lines
        // which is the minimum number of cache lines" (§4.1) — the write
        // class included.
        let k = kernels::matadd(6);
        let reads = MinCacheReport::analyze(&k, 8);
        assert_eq!(reads.total_lines, 2); // reads only: a and b
    }

    #[test]
    fn min_pow2_rounds_up() {
        let k = kernels::sor(31);
        let r = MinCacheReport::analyze(&k, 8);
        assert!(r.min_pow2_cache_bytes() >= r.min_cache_bytes());
        assert!(r.min_pow2_cache_bytes().is_power_of_two());
    }

    #[test]
    fn matmul_bound_is_finite_and_small() {
        let k = kernels::matmul(31);
        let r = MinCacheReport::analyze(&k, 16);
        assert_eq!(r.lines_per_class.len(), 3);
        assert!(r.total_lines <= 6);
    }
}
