//! Off-chip memory assignment (§4.1).
//!
//! Conflict misses occur when data that will be reused soon is displaced by
//! another reference mapping to the same cache line. For *compatible* access
//! patterns (same `H` — the accesses keep a loop-invariant distance), a data
//! layout exists that avoids conflicts entirely: give each reference class
//! its own cache-line range by padding array base addresses and row pitches.
//!
//! The paper's Compress walk-through: with a line of 2 and a cache of 8,
//! `a[0][0]` (class 1 leader) sits at address 0 → line 0; the natural
//! address 32 of `a[1][0]` (class 2 leader) also maps to line 0, conflicting
//! every iteration, so the row pitch is padded 32 → 36, putting `a[1][0]` on
//! line 2. Its Example 2 pads *between* arrays instead (`b` moved to 38,
//! `c` to 76).
//!
//! [`optimize_layout`] implements this as a bounded search. Arrays are
//! placed in declaration order; for each, every (row pitch, base) pair
//! within one cache size of padding is scored by how many class byte
//! footprints (member span plus one line of phase slack, taken modulo the
//! cache size) collide — with each other or with classes of already-placed
//! arrays — and the least-colliding, least-padded assignment wins. Later
//! multi-row arrays must keep their pitch congruent
//! (mod cache size) with earlier ones so inter-class spacing survives row
//! boundaries. Unlike a fixed target-line scheme, collision scoring lets
//! stencil classes (rows `i−1`, `i`, `i+1`, whose spacing is forced to
//! multiples of the pitch) settle into any equally-spaced conflict-free
//! arrangement.

use crate::classes::{partition_classes, RefClass};

use loopir::layout::Placement;
use loopir::{ArrayId, DataLayout, Kernel};
use std::error::Error;
use std::fmt;

/// Errors from [`optimize_layout`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlacementError {
    /// The kernel declares no arrays.
    NoArrays,
    /// Cache or line size was zero or line exceeds cache.
    BadGeometry {
        /// Cache size passed in.
        cache_size: u64,
        /// Line size passed in.
        line: u64,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoArrays => write!(f, "kernel declares no arrays"),
            PlacementError::BadGeometry { cache_size, line } => {
                write!(f, "bad cache geometry: size {cache_size}, line {line}")
            }
        }
    }
}

impl Error for PlacementError {}

/// The outcome of a placement optimisation.
#[derive(Clone, Debug)]
pub struct PlacementReport {
    /// The optimised layout.
    pub layout: DataLayout,
    /// Cache line each class leader landed on (in `partition_classes`
    /// order, writes included).
    pub leader_lines: Vec<u64>,
    /// Number of classes whose line range collides with another class.
    pub colliding_classes: usize,
    /// Total classes considered.
    pub total_classes: usize,
    /// Extra off-chip bytes relative to the natural packed layout.
    pub padding_bytes: u64,
    /// True when no class ranges collide *and* the total line requirement
    /// fits the cache — the conflict-free guarantee of §4.1 applies.
    pub conflict_free: bool,
}

/// First iteration point of the nest (lower bounds, evaluated outside-in).
fn first_iteration(kernel: &Kernel) -> Vec<i64> {
    let mut ivs: Vec<i64> = Vec::with_capacity(kernel.nest.depth());
    for l in &kernel.nest.loops {
        let lo = l.lower.eval(&ivs);
        ivs.push(lo);
    }
    ivs
}

/// The subscripts of a class leader at the first iteration point.
fn leader_subscripts(kernel: &Kernel, class: &RefClass, ivs: &[i64]) -> Vec<i64> {
    kernel.nest.refs[class.leader()]
        .subscripts
        .iter()
        .map(|s| s.eval(ivs))
        .collect()
}

/// Computes the byte address of `subs` under a candidate placement.
fn candidate_address(kernel: &Kernel, array: ArrayId, p: Placement, subs: &[i64]) -> u64 {
    let a = kernel.array(array);
    if a.dims.len() == 1 {
        return p.base + subs[0] as u64 * a.elem_size as u64;
    }
    let weights = a.weights();
    let inner: u64 = subs[1..]
        .iter()
        .zip(&weights[1..])
        .map(|(&s, &w)| s as u64 * w as u64)
        .sum();
    p.base + subs[0] as u64 * p.row_pitch + inner * a.elem_size as u64
}

/// A circular byte range `[start, start+len)` on a ring of `n` bytes (the
/// cache size). `len` already includes one line of phase slack.
#[derive(Clone, Copy, Debug)]
struct ByteRange {
    start: u64,
    len: u64,
}

impl ByteRange {
    #[cfg(test)]
    fn overlaps(&self, other: &ByteRange, n: u64) -> bool {
        self.overlap_len(other, n) > 0
    }

    /// Bytes shared by the two circular ranges.
    fn overlap_len(&self, other: &ByteRange, n: u64) -> u64 {
        let (la, lb) = (self.len.min(n), other.len.min(n));
        if la == n || lb == n {
            return la.min(lb);
        }
        // Shift so self starts at 0; other covers [d, d+lb) with a possible
        // wrapped tail [0, d+lb-n).
        let d = (other.start + n - self.start) % n;
        let head = if d < la { lb.min(la - d) } else { 0 };
        let tail = (d + lb).saturating_sub(n).min(la);
        (head + tail).min(la.min(lb))
    }
}

/// Pairwise collision score: how many ranges collide with another, and how
/// many total bytes overlap. The byte term gives the search a gradient when
/// the ranges cannot all be disjoint (small caches), so it spreads them as
/// evenly as possible instead of picking an arbitrary tied candidate.
fn collisions(ranges: &[ByteRange], n: u64) -> (usize, u64) {
    let mut colliding = vec![false; ranges.len()];
    let mut overlap_bytes = 0u64;
    for i in 0..ranges.len() {
        for j in (i + 1)..ranges.len() {
            let ov = ranges[i].overlap_len(&ranges[j], n);
            if ov > 0 {
                colliding[i] = true;
                colliding[j] = true;
                overlap_bytes += ov;
            }
        }
    }
    (colliding.iter().filter(|&&c| c).count(), overlap_bytes)
}

/// Optimises the layout of `kernel` for a direct-mapped (or limited-
/// associativity) cache of `cache_size` bytes with `line`-byte lines.
///
/// Returns the padded layout plus a report. When the constraints cannot all
/// be met (incompatible patterns, or more class lines than the cache holds),
/// the best-effort layout with the fewest collisions is returned with
/// `conflict_free = false`.
///
/// # Errors
///
/// [`PlacementError::NoArrays`] for array-less kernels and
/// [`PlacementError::BadGeometry`] for non-positive or inconsistent cache
/// geometry.
pub fn optimize_layout(
    kernel: &Kernel,
    cache_size: u64,
    line: u64,
) -> Result<PlacementReport, PlacementError> {
    if kernel.arrays.is_empty() {
        return Err(PlacementError::NoArrays);
    }
    if cache_size == 0 || line == 0 || line > cache_size {
        return Err(PlacementError::BadGeometry { cache_size, line });
    }
    let num_lines = cache_size / line;

    // Writes participate: an allocated store occupies a line too.
    let classes = partition_classes(kernel, false);
    let ivs = first_iteration(kernel);

    // Scoring units. Classes of the same array with the same `H` share
    // data: the element a leading row-class fetches is reused by a trailing
    // row-class a full row of iterations later, so the *whole window*
    // between the group's lowest and highest member must stay resident for
    // that reuse to survive — one protected byte range per (array, H)
    // group. When the window exceeds the cache, the long reuse is lost to
    // capacity in any layout (a fully associative cache of the same size
    // also misses it), so the group degrades gracefully to one range per
    // class protecting each stream's leading edge.
    //
    // Every range carries one line of phase slack: two lockstep streams
    // stay on disjoint cache lines at *every* phase iff the circular byte
    // gap between their footprints is at least one line on both sides.
    // (Scoring on leader line indexes alone is wrong: a half-line
    // separation has distinct leader lines at the first iteration but
    // collides as the streams drift across line boundaries.)
    struct Unit {
        array: ArrayId,
        /// Class whose leader is the group's lowest address.
        leader_class: usize,
        /// Protected bytes (span + element width + line slack).
        footprint: u64,
    }
    let mut units: Vec<Unit> = Vec::new();
    {
        let mut grouped: Vec<bool> = vec![false; classes.len()];
        for i in 0..classes.len() {
            if grouped[i] {
                continue;
            }
            let group: Vec<usize> = (i..classes.len())
                .filter(|&j| classes[j].array == classes[i].array && classes[j].h == classes[i].h)
                .collect();
            for &j in &group {
                grouped[j] = true;
            }
            let elem = kernel.array(classes[i].array).elem_size as u64;
            let min_off = group
                .iter()
                .map(|&j| *classes[j].linear_offsets.first().expect("non-empty class"))
                .min()
                .expect("non-empty group");
            let max_off = group
                .iter()
                .map(|&j| *classes[j].linear_offsets.last().expect("non-empty class"))
                .max()
                .expect("non-empty group");
            let window = (max_off - min_off).unsigned_abs() * elem + elem - 1 + line;
            if window <= cache_size {
                let leader_class = group
                    .iter()
                    .copied()
                    .min_by_key(|&j| *classes[j].linear_offsets.first().expect("non-empty"))
                    .expect("non-empty group");
                units.push(Unit {
                    array: classes[i].array,
                    leader_class,
                    footprint: window,
                });
            } else {
                for &j in &group {
                    units.push(Unit {
                        array: classes[j].array,
                        leader_class: j,
                        footprint: classes[j].element_span().unsigned_abs() * elem + elem - 1
                            + line,
                    });
                }
            }
        }
    }
    let fits = units.iter().map(|u| u.footprint).sum::<u64>() <= cache_size;

    // Unit indices per array.
    let per_array: Vec<Vec<usize>> = (0..kernel.arrays.len())
        .map(|a| {
            units
                .iter()
                .enumerate()
                .filter(|(_, u)| u.array == ArrayId(a))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let mut placements: Vec<Placement> = Vec::with_capacity(kernel.arrays.len());
    let mut fixed_ranges: Vec<ByteRange> = Vec::new();
    let mut base_cursor = 0u64;
    // Row-pitch residues (mod cache) keyed by the `H` of already-placed
    // classes: arrays accessed with the same `H` advance through memory in
    // lockstep only if their pitches agree mod the cache size, so a later
    // array sharing an `H` with an earlier one must match that residue.
    // Arrays with unrelated access patterns (e.g. a streaming coefficient
    // plane vs. a small resident look-up table) stay unconstrained — forcing
    // a shared pitch there would inflate the small array and wreck its
    // locality.
    let mut residue_by_h: Vec<(Vec<i64>, u64)> = Vec::new();

    for (aidx, array) in kernel.arrays.iter().enumerate() {
        let elem = array.elem_size as u64;
        let natural_pitch: u64 = array.dims[1..].iter().map(|&d| d as u64).product::<u64>() * elem;
        let multi_row = array.dims.len() > 1 && array.dims[0] > 1;
        let unit_ids = &per_array[aidx];

        // Residue this array must honour: the residue of any earlier-placed
        // array sharing an `H` with one of this array's classes.
        let required_residue: Option<u64> = unit_ids.iter().find_map(|&ui| {
            let h = &classes[units[ui].leader_class].h;
            residue_by_h.iter().find(|(rh, _)| rh == h).map(|(_, r)| *r)
        });
        let pitch_candidates: Vec<u64> = if multi_row {
            (0..cache_size.div_ceil(elem))
                .map(|k| natural_pitch + k * elem)
                .filter(|&p| required_residue.is_none_or(|r| p % cache_size == r))
                .collect()
        } else {
            vec![natural_pitch.max(elem)]
        };
        // Fall back to unconstrained pitches if the residue filter emptied
        // the candidate list (differing element sizes can cause this).
        let pitch_candidates = if pitch_candidates.is_empty() {
            (0..cache_size.div_ceil(elem))
                .map(|k| natural_pitch + k * elem)
                .collect()
        } else {
            pitch_candidates
        };

        // (collision score, padding, placement, protected ranges)
        type Candidate = ((usize, u64), u64, Placement, Vec<ByteRange>);
        let mut best: Option<Candidate> = None;
        'search: for &pitch in &pitch_candidates {
            for k in 0..cache_size.div_ceil(elem) {
                let base = base_cursor + k * elem;
                let p = Placement {
                    base,
                    row_pitch: pitch,
                };
                let new_ranges: Vec<ByteRange> = unit_ids
                    .iter()
                    .map(|&ui| {
                        let subs =
                            leader_subscripts(kernel, &classes[units[ui].leader_class], &ivs);
                        let addr = candidate_address(kernel, ArrayId(aidx), p, &subs);
                        ByteRange {
                            start: addr % cache_size,
                            len: units[ui].footprint.min(cache_size),
                        }
                    })
                    .collect();
                let mut all: Vec<ByteRange> = fixed_ranges.clone();
                all.extend(new_ranges.iter().copied());
                let score = collisions(&all, cache_size);
                let padding = (base - base_cursor) + (pitch - natural_pitch);
                let better = match &best {
                    None => true,
                    Some((bs, bp, _, _)) => score < *bs || (score == *bs && padding < *bp),
                };
                if better {
                    let zero = score == (0, 0);
                    best = Some((score, padding, p, new_ranges));
                    if zero {
                        break 'search;
                    }
                }
            }
        }

        let (_, _, placement, new_ranges) =
            best.expect("search space is non-empty for every array");
        fixed_ranges.extend(new_ranges);
        if multi_row {
            for &ui in unit_ids {
                let h = &classes[units[ui].leader_class].h;
                if !residue_by_h.iter().any(|(rh, _)| rh == h) {
                    residue_by_h.push((h.clone(), placement.row_pitch % cache_size));
                }
            }
        }
        // Advance the cursor past this array.
        let rows = array.dims[0] as u64;
        let end = if array.dims.len() == 1 {
            placement.base + array.byte_size() as u64
        } else {
            placement.base + (rows - 1) * placement.row_pitch + natural_pitch
        };
        base_cursor = end;
        placements.push(placement);
    }

    // Final report: recompute leader positions and collisions over all
    // classes.
    let layout = DataLayout::from_placements(kernel, placements);
    let leader_addrs: Vec<u64> = classes
        .iter()
        .map(|c| {
            let subs = leader_subscripts(kernel, c, &ivs);
            layout.element_address(kernel, c.array, &subs)
        })
        .collect();
    let leader_lines: Vec<u64> = leader_addrs
        .iter()
        .map(|&addr| (addr / line) % num_lines)
        .collect();
    let final_ranges: Vec<ByteRange> = units
        .iter()
        .map(|u| ByteRange {
            start: leader_addrs[u.leader_class] % cache_size,
            len: u.footprint.min(cache_size),
        })
        .collect();
    let (colliding_classes, _) = collisions(&final_ranges, cache_size);
    let padding_bytes = layout.padding_overhead(kernel);
    Ok(PlacementReport {
        layout,
        leader_lines,
        colliding_classes,
        total_classes: units.len(),
        padding_bytes,
        conflict_free: fits && colliding_classes == 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;
    use loopir::{AccessKind, TraceGen};
    use memsim::{CacheConfig, Simulator, TraceEvent};

    fn miss_rate(kernel: &Kernel, layout: &DataLayout, t: usize, l: usize, s: usize) -> f64 {
        let cfg = CacheConfig::new(t, l, s).unwrap();
        let events = TraceGen::new(kernel, layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        Simulator::simulate(cfg, events).stats.read_miss_rate()
    }

    #[test]
    fn matadd_reproduces_example_2_addresses() {
        // Paper §4.1, Example 2: byte elements, line 2, three lines (the
        // stated minimum): a at 0, b moved to 38, c to 76.
        let proto = kernels::matadd(6);
        let arrays = proto
            .arrays
            .iter()
            .map(|a| loopir::ArrayDecl::new(a.name.clone(), &a.dims, 1))
            .collect();
        let k = Kernel::new("matadd-bytes", arrays, proto.nest.clone());
        let r = optimize_layout(&k, 6, 2).unwrap();
        assert!(r.conflict_free, "{r:?}");
        assert_eq!(r.layout.placement(ArrayId(0)).base, 0);
        assert_eq!(r.layout.placement(ArrayId(1)).base, 38);
        assert_eq!(r.layout.placement(ArrayId(2)).base, 76);
        assert_eq!(r.leader_lines, vec![0, 1, 2]);
    }

    #[test]
    fn optimized_compress_eliminates_conflict_misses() {
        let k = kernels::compress(31);
        let r = optimize_layout(&k, 64, 8).unwrap();
        assert!(r.conflict_free, "{r:?}");
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let events = TraceGen::new(&k, &r.layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        let report = Simulator::simulate_classified(cfg, events);
        let classes = report.miss_classes.unwrap();
        assert_eq!(
            classes.conflict, 0,
            "optimized layout must have no conflict misses: {classes:?}"
        );
    }

    #[test]
    fn optimized_beats_natural_for_the_paper_kernels() {
        for k in kernels::all_paper_kernels() {
            let natural = DataLayout::natural(&k);
            let r = optimize_layout(&k, 64, 8).unwrap();
            let mr_nat = miss_rate(&k, &natural, 64, 8, 1);
            let mr_opt = miss_rate(&k, &r.layout, 64, 8, 1);
            assert!(
                mr_opt <= mr_nat + 1e-9,
                "{}: optimized {mr_opt} exceeds natural {mr_nat}",
                k.name
            );
        }
    }

    #[test]
    fn stencil_classes_settle_on_equally_spaced_lines() {
        // SOR's three row classes must be pitched apart; collision scoring
        // should find a conflict-free arrangement in a 64 B / 8 B cache.
        let k = kernels::sor(31);
        let r = optimize_layout(&k, 64, 8).unwrap();
        assert!(r.conflict_free, "{r:?}");
    }

    #[test]
    fn padding_is_bounded() {
        let k = kernels::matadd(6);
        let r = optimize_layout(&k, 32, 4).unwrap();
        // Each array may add at most ~one cache size of padding.
        assert!(r.padding_bytes <= 3 * 32 + 3 * 32);
        assert!(r.layout.check_no_overlap(&k).is_ok());
    }

    #[test]
    fn layouts_never_overlap() {
        for k in kernels::all_paper_kernels() {
            for (t, l) in [(32u64, 4u64), (64, 8), (128, 16), (512, 32)] {
                let r = optimize_layout(&k, t, l).unwrap();
                assert!(
                    r.layout.check_no_overlap(&k).is_ok(),
                    "{} at C{t}L{l}",
                    k.name
                );
            }
        }
    }

    #[test]
    fn bad_geometry_is_rejected() {
        let k = kernels::matadd(6);
        assert!(matches!(
            optimize_layout(&k, 0, 4),
            Err(PlacementError::BadGeometry { .. })
        ));
        assert!(matches!(
            optimize_layout(&k, 8, 16),
            Err(PlacementError::BadGeometry { .. })
        ));
    }

    #[test]
    fn tiny_cache_reports_not_conflict_free() {
        // Compress needs 4+ lines; a 2-line cache cannot hold the classes.
        let k = kernels::compress(31);
        let r = optimize_layout(&k, 16, 8).unwrap();
        assert!(!r.conflict_free);
    }

    #[test]
    fn line_ranges_overlap_logic() {
        let n = 8;
        let a = ByteRange { start: 0, len: 2 };
        let b = ByteRange { start: 2, len: 2 };
        let c = ByteRange { start: 1, len: 2 };
        let d = ByteRange { start: 7, len: 2 }; // wraps to 0
        assert!(!a.overlaps(&b, n));
        assert!(a.overlaps(&c, n));
        assert!(a.overlaps(&d, n));
        assert!(!b.overlaps(&d, n));
        let full = ByteRange { start: 3, len: 8 };
        assert!(full.overlaps(&a, n));
    }
}
