//! Equivalence classes and cases of uniformly generated references.
//!
//! Two references `a[f(i)]`, `a[g(i)]` are *uniformly generated* (Wolf & Lam)
//! when `f(i) = H·i + c_f` and `g(i) = H·i + c_g` share the linear part `H`.
//! The paper groups references that share `H` **and** the array into a
//! *class*, and introduces *cases*: groups sharing `H` but reading different
//! arrays (§3). Both drive the minimum-cache-size bound and the off-chip
//! placement.

use loopir::{AccessKind, ArrayId, Kernel};

/// One equivalence class: references to a single array sharing `H` **and**
/// every constant-vector component except the innermost.
///
/// The paper's Example 1 groups Compress's four reads into class 1
/// {`a[i-1,j-1]`, `a[i-1,j]`} and class 2 {`a[i,j-1]`, `a[i,j]`}: uniformly
/// generated references that differ in an *outer* dimension live a whole row
/// apart, can never share a cache line, and therefore form separate classes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RefClass {
    /// The referenced array.
    pub array: ArrayId,
    /// The shared linear part, flattened row-major
    /// (`subscripts × loop depth`).
    pub h: Vec<i64>,
    /// The shared constant-vector prefix (all but the innermost component).
    pub outer_constants: Vec<i64>,
    /// Indices into `kernel.nest.refs` of the member references.
    pub members: Vec<usize>,
    /// The members' constant vectors linearised to element offsets within
    /// the array (row-major), sorted ascending.
    pub linear_offsets: Vec<i64>,
}

impl RefClass {
    /// The spread between the first and last member in elements
    /// (`0` for singleton classes).
    pub fn element_span(&self) -> i64 {
        match (self.linear_offsets.first(), self.linear_offsets.last()) {
            (Some(first), Some(last)) => last - first,
            _ => 0,
        }
    }

    /// Index (into the kernel's refs) of the *leader*: the member with the
    /// smallest linearised constant vector.
    pub fn leader(&self) -> usize {
        self.members[0]
    }
}

/// Partitions the kernel's references into classes (same `H`, same array).
///
/// With `reads_only` set, write references are ignored — the paper's models
/// consider only reads. Members within a class are sorted by linearised
/// constant offset; classes are returned in order of their leader's
/// appearance in the body.
pub fn partition_classes(kernel: &Kernel, reads_only: bool) -> Vec<RefClass> {
    let depth = kernel.nest.depth();
    let mut classes: Vec<RefClass> = Vec::new();
    for (idx, r) in kernel.nest.refs.iter().enumerate() {
        if reads_only && r.kind != AccessKind::Read {
            continue;
        }
        let h = r.h_matrix(depth);
        let constants = r.constant_vector();
        let outer: Vec<i64> = constants[..constants.len().saturating_sub(1)].to_vec();
        let offset = linearize_constant(kernel, r.array, &constants);
        match classes
            .iter_mut()
            .find(|c| c.array == r.array && c.h == h && c.outer_constants == outer)
        {
            Some(c) => {
                // Skip duplicate references (identical constant vector):
                // e.g. `a[i,j]` read twice contributes one footprint.
                if !c.linear_offsets.contains(&offset) {
                    c.members.push(idx);
                    c.linear_offsets.push(offset);
                }
            }
            None => classes.push(RefClass {
                array: r.array,
                h,
                outer_constants: outer,
                members: vec![idx],
                linear_offsets: vec![offset],
            }),
        }
    }
    for c in &mut classes {
        let mut pairs: Vec<(i64, usize)> = c
            .linear_offsets
            .iter()
            .copied()
            .zip(c.members.iter().copied())
            .collect();
        pairs.sort();
        c.linear_offsets = pairs.iter().map(|p| p.0).collect();
        c.members = pairs.iter().map(|p| p.1).collect();
    }
    classes
}

/// Groups classes into *cases*: classes sharing the same `H` across
/// different arrays form one case (§3). Each returned group holds indices
/// into the `partition_classes` output; classes with a unique `H` form
/// singleton groups.
pub fn partition_cases(classes: &[RefClass]) -> Vec<Vec<usize>> {
    let mut cases: Vec<(Vec<i64>, Vec<usize>)> = Vec::new();
    for (i, c) in classes.iter().enumerate() {
        match cases.iter_mut().find(|(h, _)| *h == c.h) {
            Some((_, group)) => group.push(i),
            None => cases.push((c.h.clone(), vec![i])),
        }
    }
    cases.into_iter().map(|(_, g)| g).collect()
}

/// The paper's compatibility test (§4.1): two access patterns are
/// *compatible* when the difference between their accesses is independent of
/// the loop index — i.e. they share the linear part `H`. (`a[i]` and
/// `a[i-2]` are compatible; `a[i]` and `a[b[i]]` would not be, but
/// data-dependent subscripts are outside this affine IR by construction.)
pub fn compatible(kernel: &Kernel, ref_a: usize, ref_b: usize) -> bool {
    let depth = kernel.nest.depth();
    let ra = &kernel.nest.refs[ref_a];
    let rb = &kernel.nest.refs[ref_b];
    ra.h_matrix(depth) == rb.h_matrix(depth)
}

/// Linearises a constant subscript vector to a row-major element offset.
pub(crate) fn linearize_constant(kernel: &Kernel, array: ArrayId, c: &[i64]) -> i64 {
    let weights = kernel.array(array).weights();
    c.iter()
        .zip(weights.iter())
        .map(|(&ci, &w)| ci * w as i64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn compress_has_two_classes_of_two() {
        let k = kernels::compress(31);
        let classes = partition_classes(&k, true);
        assert_eq!(classes.len(), 2);
        for c in &classes {
            assert_eq!(c.members.len(), 2, "each class has two references");
        }
        // Class of {a[i,j-1], a[i,j]} and class of {a[i-1,j-1], a[i-1,j]}:
        // both span exactly 1 element.
        assert!(classes.iter().all(|c| c.element_span() == 1));
    }

    #[test]
    fn including_writes_merges_into_existing_class() {
        // Compress writes a[i,j], which shares H and constant with the read.
        let k = kernels::compress(31);
        let with_writes = partition_classes(&k, false);
        assert_eq!(with_writes.len(), 2); // still two classes (dup skipped)
    }

    #[test]
    fn matadd_is_three_singleton_classes_one_case() {
        let k = kernels::matadd(6);
        let classes = partition_classes(&k, true);
        assert_eq!(classes.len(), 2); // reads of a and b
        let all = partition_classes(&k, false);
        assert_eq!(all.len(), 3); // plus write of c
        let cases = partition_cases(&all);
        assert_eq!(cases.len(), 1, "same H across arrays is one case");
        assert_eq!(cases[0].len(), 3);
    }

    #[test]
    fn matmul_has_distinct_h_per_array() {
        let k = kernels::matmul(8);
        let classes = partition_classes(&k, true);
        assert_eq!(classes.len(), 3); // c[i,j], a[i,k], b[k,j]
        let cases = partition_cases(&classes);
        assert_eq!(cases.len(), 3, "all three H matrices differ");
    }

    #[test]
    fn sor_splits_into_three_row_classes() {
        let k = kernels::sor(31);
        let classes = partition_classes(&k, true);
        assert_eq!(classes.len(), 3);
        let sizes: Vec<usize> = classes.iter().map(|c| c.members.len()).collect();
        // Row -1: {a[i-1,j]}; row 0: {a[i,j], a[i,j-1], a[i,j+1]}; row +1:
        // {a[i+1,j]}. Body order puts row 0 first.
        assert!(sizes.contains(&3));
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        let row0 = classes.iter().find(|c| c.members.len() == 3).unwrap();
        // Span from a[i,j-1] to a[i,j+1] is two elements.
        assert_eq!(row0.element_span(), 2);
    }

    #[test]
    fn pde_has_three_classes_for_a_plus_case_structure() {
        let k = kernels::pde(31);
        let classes = partition_classes(&k, true);
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn leaders_have_smallest_offset() {
        let k = kernels::compress(31);
        let classes = partition_classes(&k, true);
        for c in &classes {
            assert!(c.linear_offsets.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn compatibility_follows_h_equality() {
        let k = kernels::compress(31);
        // a[i,j] (ref 0) and a[i-1,j] (ref 1) share H.
        assert!(compatible(&k, 0, 1));
        let t = kernels::transpose(8);
        // b[j,i] (ref 0) and a[i,j] (ref 1) have transposed H.
        assert!(!compatible(&t, 0, 1));
    }
}
