//! Exact closed-form replay for conflict-light read traces.
//!
//! The §3 machinery ([`missrate`](crate::missrate)) estimates miss rates
//! from reuse distances under a conflict-free assumption — fast but
//! approximate. This module goes one step further for the cases where the
//! assumption can be *proved* against the concrete trace: it computes the
//! full simulator report (hit/miss counters, both address buses) in
//! closed form, bit-identical to what `memsim` would measure, so a sweep
//! can skip replay entirely for qualifying designs.
//!
//! The argument has two halves, both per line-size class (a trace splits
//! into line-granular sub-accesses the same way for every design sharing
//! a line size — see `memsim::ReplayBank`):
//!
//! 1. **Profile** ([`profile_read_class`]): one pass over the trace
//!    collects the sub-access count, the distinct lines in first-touch
//!    order, whether each line's sub-accesses form one contiguous run,
//!    and both bus monitors' statistics. The CPU bus is a pure function
//!    of the sub-access stream; the memory bus sees exactly the fills,
//!    which for the qualifying cases below are exactly the first touches
//!    in first-touch order.
//! 2. **Classify** ([`exact_report`]): a design is *analytic-exact* when
//!    the trace is read-only and either
//!    * every line's sub-accesses are **contiguous** — a line is never
//!      re-referenced after the stream leaves it, so each distinct line
//!      misses exactly once (compulsory) and eviction choice is
//!      irrelevant: any policy evicts only lines that are never touched
//!      again, and each set's eviction count is just
//!      `max(0, fills − assoc)`; or
//!    * the **occupancy replay** shows no set ever receives more fills
//!      than it has ways — nothing is ever evicted, so every revisit
//!      hits regardless of replacement policy.
//!
//!    In both cases misses = distinct lines, hits = sub-accesses −
//!    misses, writebacks = 0 (read-only), and the fill sequence — hence
//!    the memory-bus trace — is the first-touch sequence.
//!
//! Anything else (writes, revisits after a possible eviction, line
//! buffers, miss classifiers) must simulate.

use memsim::{BusEncoding, BusMonitor, CacheConfig, CacheStats, SimReport, TraceEvent};
use std::collections::HashMap;

/// One line-size class's trace profile — everything [`exact_report`]
/// needs, computed in a single pass shared by all designs of that line
/// size.
#[derive(Clone, Debug)]
pub struct ClassProfile {
    /// `line.trailing_zeros()`.
    pub shift: u32,
    /// Line-granular sub-accesses after Dinero-style splitting (equals
    /// the read count every lane of this class records).
    pub sub_accesses: u64,
    /// Distinct line numbers in first-touch order — the compulsory-miss
    /// (and, for qualifying designs, the fill) sequence.
    pub first_touch: Vec<u64>,
    /// Whether every line's sub-accesses form one contiguous run.
    pub contiguous: bool,
    /// Processor↔cache bus statistics over the full sub-access stream.
    pub cpu_bus: memsim::BusStats,
    /// Cache↔memory bus statistics over the first-touch fill sequence.
    pub mem_bus: memsim::BusStats,
}

/// Profiles a read-only trace for one line size, splitting multi-byte
/// events exactly as the replay engine does. Returns `None` if the trace
/// contains any write — dirty lines make eviction *identity* matter, and
/// the closed form only counts.
pub fn profile_read_class(
    events: &[TraceEvent],
    line: usize,
    encoding: BusEncoding,
) -> Option<ClassProfile> {
    debug_assert!(line.is_power_of_two());
    let shift = line.trailing_zeros();
    let mut cpu = BusMonitor::new(encoding);
    let mut first_touch = Vec::new();
    // Line → whether the stream has already left it (any later revisit
    // breaks contiguity). The value is the index in `first_touch`.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut contiguous = true;
    let mut sub_accesses = 0u64;
    let mut prev_line = u64::MAX;
    for e in events {
        if e.is_write {
            return None;
        }
        let size = u64::from(e.size.max(1));
        let first_line = e.addr >> shift;
        let last_line = (e.addr + size - 1) >> shift;
        for l in first_line..=last_line {
            cpu.observe_cpu(if l == first_line { e.addr } else { l << shift });
            sub_accesses += 1;
            if l != prev_line {
                match seen.entry(l) {
                    std::collections::hash_map::Entry::Occupied(_) => contiguous = false,
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(first_touch.len());
                        first_touch.push(l);
                    }
                }
                prev_line = l;
            }
        }
    }
    let mut mem = BusMonitor::new(encoding);
    for &l in &first_touch {
        mem.observe_mem(l << shift);
    }
    Some(ClassProfile {
        shift,
        sub_accesses,
        first_touch,
        contiguous,
        cpu_bus: cpu.cpu(),
        mem_bus: mem.mem(),
    })
}

/// Replays set occupancy over the first-touch sequence: total evictions
/// assuming each distinct line fills once, and whether any set ever
/// overflows its ways.
fn occupancy_evictions(profile: &ClassProfile, sets: usize, assoc: usize) -> u64 {
    let mask = sets as u64 - 1;
    let mut fills = vec![0u64; sets];
    for &l in &profile.first_touch {
        fills[(l & mask) as usize] += 1;
    }
    fills.iter().map(|&f| f.saturating_sub(assoc as u64)).sum()
}

/// The exact simulator report for `config` replaying the profiled class,
/// or `None` when the design must simulate. See the module docs for the
/// two qualifying conditions; the returned report is bit-identical to a
/// `memsim` replay of the same trace (asserted wholesale by the
/// differential oracle suite).
pub fn exact_report(profile: &ClassProfile, config: CacheConfig) -> Option<SimReport> {
    debug_assert_eq!(config.line().trailing_zeros(), profile.shift);
    let evictions = occupancy_evictions(profile, config.num_sets(), config.assoc());
    if !profile.contiguous && evictions > 0 {
        return None;
    }
    let misses = profile.first_touch.len() as u64;
    let stats = CacheStats {
        reads: profile.sub_accesses,
        read_hits: profile.sub_accesses - misses,
        writes: 0,
        write_hits: 0,
        fills: misses,
        evictions,
        writebacks: 0,
        buffer_hits: 0,
    };
    Some(SimReport {
        config,
        stats,
        cpu_bus: profile.cpu_bus,
        mem_bus: profile.mem_bus,
        miss_classes: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::Simulator;

    fn reads(addrs: &[u64]) -> Vec<TraceEvent> {
        addrs.iter().map(|&a| TraceEvent::read(a, 4)).collect()
    }

    fn assert_exact_matches_sim(trace: &[TraceEvent], config: CacheConfig) {
        let profile = profile_read_class(trace, config.line(), BusEncoding::Gray)
            .expect("read-only trace profiles");
        let report = exact_report(&profile, config).expect("design classified exact");
        let mut sim = Simulator::with_options(config, BusEncoding::Gray, false);
        sim.run_slice(trace);
        let lone = sim.into_report();
        assert_eq!(report.stats, lone.stats, "{config}");
        assert_eq!(report.cpu_bus, lone.cpu_bus, "{config}");
        assert_eq!(report.mem_bus, lone.mem_bus, "{config}");
    }

    #[test]
    fn writes_disqualify_the_class() {
        let trace = vec![TraceEvent::read(0, 4), TraceEvent::write(8, 4)];
        assert!(profile_read_class(&trace, 8, BusEncoding::Gray).is_none());
    }

    #[test]
    fn contiguous_stream_is_exact_even_with_evictions() {
        // A sequential walk leaves each line for good: exact at any size.
        let trace = reads(&(0..256).map(|i| i * 4).collect::<Vec<_>>());
        for (t, l, a) in [(32usize, 8usize, 1usize), (64, 8, 2), (64, 16, 4)] {
            assert_exact_matches_sim(&trace, CacheConfig::new(t, l, a).unwrap());
        }
    }

    #[test]
    fn ample_capacity_revisits_are_exact() {
        // Revisits with no evictions: every set stays under its ways.
        let mut addrs: Vec<u64> = (0..32).map(|i| i * 8).collect();
        addrs.extend((0..32).map(|i| i * 8)); // full second pass
        let trace = reads(&addrs);
        assert_exact_matches_sim(&trace, CacheConfig::new(512, 8, 2).unwrap());
    }

    #[test]
    fn evicting_revisits_must_simulate() {
        // Two passes over a footprint larger than the cache: revisits
        // after eviction — the closed form refuses.
        let mut addrs: Vec<u64> = (0..64).map(|i| i * 8).collect();
        addrs.extend((0..64).map(|i| i * 8));
        let trace = reads(&addrs);
        let profile = profile_read_class(&trace, 8, BusEncoding::Gray).unwrap();
        assert!(!profile.contiguous);
        assert!(exact_report(&profile, CacheConfig::new(64, 8, 1).unwrap()).is_none());
        // …but a cache holding the whole footprint qualifies.
        assert!(exact_report(&profile, CacheConfig::new(1024, 8, 2).unwrap()).is_some());
    }

    #[test]
    fn spanning_accesses_split_like_the_simulator() {
        let trace: Vec<TraceEvent> = (0..100).map(|i| TraceEvent::read(i * 6, 4)).collect();
        assert_exact_matches_sim(&trace, CacheConfig::new(1024, 8, 1).unwrap());
    }

    #[test]
    fn policies_do_not_change_the_exact_counts() {
        use memsim::Replacement;
        let trace = reads(&(0..200).map(|i| i * 4).collect::<Vec<_>>());
        let base = CacheConfig::new(64, 8, 2).unwrap();
        for r in [
            Replacement::Lru,
            Replacement::Fifo,
            Replacement::Plru,
            Replacement::Random { seed: 3 },
        ] {
            assert_exact_matches_sim(&trace, base.with_replacement(r));
        }
    }
}
