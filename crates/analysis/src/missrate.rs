//! The paper's closed-form (analytical) miss-rate estimate.
//!
//! The paper derives miss rates from analytical expressions rather than
//! simulation (§4.1 end note). Reconstructed from its reported numbers, the
//! model assumes a **conflict-free, capacity-unlimited** steady state:
//!
//! * references are partitioned into (array, `H`) groups; within a group
//!   only the *leading* class (the one furthest ahead in memory) fetches new
//!   data — trailing classes reuse what the leader brought in;
//! * the leader misses once per `L / Δ` iterations, where `Δ` is the byte
//!   distance its access pattern advances per innermost-loop iteration
//!   (spatial locality), capped at one miss per iteration;
//! * capacity effects are ignored entirely — reuse always hits, regardless
//!   of cache size, as long as the placement is conflict-free.
//!
//! Under this model the miss rate is *independent of the cache size*, which
//! is precisely why the paper's minimum-energy configuration is the smallest
//! cache (C16L4 for Compress): the `E_cell` term then dominates. Exact
//! trace-driven simulation disagrees at small caches (capacity misses are
//! real); comparing the two is the `analytical_vs_simulated` ablation.
//!
//! # Example
//!
//! ```
//! use analysis::missrate::analytical_miss_rate;
//! use loopir::kernels;
//!
//! // Compress: one leading stream advancing 4 B/iteration, 4 reads per
//! // iteration -> mr = (4/L)/4 = 1/L. At L = 16: 0.0625 (the paper's 0.06).
//! let mr = analytical_miss_rate(&kernels::compress(31), 16);
//! assert!((mr - 0.0625).abs() < 1e-12);
//! ```

use crate::classes::partition_classes;
use loopir::Kernel;

/// Estimated misses per loop-nest iteration at line size `line_bytes`.
///
/// # Panics
///
/// Panics if `line_bytes` is zero.
pub fn analytical_misses_per_iteration(kernel: &Kernel, line_bytes: u64) -> f64 {
    assert!(line_bytes > 0, "line size must be positive");
    let classes = partition_classes(kernel, true);
    let depth = kernel.nest.depth();
    if depth == 0 {
        return 0.0;
    }
    let innermost = depth - 1;
    let step = kernel.nest.loops[innermost].step;

    // Group classes by (array, H); each group is one data stream.
    let mut seen: Vec<bool> = vec![false; classes.len()];
    let mut misses = 0.0;
    for i in 0..classes.len() {
        if seen[i] {
            continue;
        }
        let group: Vec<usize> = (i..classes.len())
            .filter(|&j| classes[j].array == classes[i].array && classes[j].h == classes[i].h)
            .collect();
        for &j in &group {
            seen[j] = true;
        }
        // The leading class fetches; everyone else reuses.
        let lead = &classes[i];
        let array = kernel.array(lead.array);
        let weights = array.weights();
        // Byte advance per innermost iteration: Σ_k H[k][innermost]·w_k·elem.
        let h = &lead.h;
        let delta_elems: i64 = (0..weights.len())
            .map(|k| h[k * depth + innermost] * weights[k] as i64)
            .sum();
        let delta_bytes = (delta_elems * step).unsigned_abs() * array.elem_size as u64;
        if delta_bytes == 0 {
            // Loop-invariant in the innermost dimension: first-touch only,
            // negligible in steady state.
            continue;
        }
        misses += (delta_bytes as f64 / line_bytes as f64).min(1.0);
    }
    misses
}

/// Estimated read miss rate at line size `line_bytes` — misses per iteration
/// over reads per iteration.
///
/// Returns 0 for kernels with no reads.
///
/// # Panics
///
/// Panics if `line_bytes` is zero.
pub fn analytical_miss_rate(kernel: &Kernel, line_bytes: u64) -> f64 {
    let reads = kernel.reads_per_iteration();
    if reads == 0 {
        return 0.0;
    }
    (analytical_misses_per_iteration(kernel, line_bytes) / reads as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn compress_matches_the_papers_trend() {
        let k = kernels::compress(31);
        // One leading stream (rows merge into one (array, H) group) at
        // 4 B/iteration over 4 reads: mr = 1/L.
        for (l, expect) in [(4u64, 0.25), (8, 0.125), (16, 0.0625), (32, 0.03125)] {
            let mr = analytical_miss_rate(&k, l);
            assert!((mr - expect).abs() < 1e-12, "L{l}: {mr}");
        }
    }

    #[test]
    fn sor_has_one_stream_over_five_reads() {
        let mr = analytical_miss_rate(&kernels::sor(31), 8);
        assert!((mr - (4.0 / 8.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_column_stream_misses_every_iteration() {
        // b[k,j] advances a whole row (124 B) per k-iteration: one miss per
        // iteration; a[i,k] advances 4 B; c[i,j] is k-invariant.
        let mr = analytical_miss_rate(&kernels::matmul(31), 8);
        let expect = (1.0 + 4.0 / 8.0 + 0.0) / 3.0;
        assert!((mr - expect).abs() < 1e-12, "{mr}");
    }

    #[test]
    fn miss_rate_is_independent_of_cache_size_by_construction() {
        // The function has no cache-size parameter; this test documents the
        // modelling assumption that drives the paper's C16L4 optimum.
        let k = kernels::pde(31);
        let mr = analytical_miss_rate(&k, 8);
        assert!(mr > 0.0 && mr < 1.0);
    }

    #[test]
    fn longer_lines_reduce_the_estimate() {
        let k = kernels::dequant(31);
        let m4 = analytical_miss_rate(&k, 4);
        let m32 = analytical_miss_rate(&k, 32);
        assert!(m32 < m4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_line_panics() {
        let _ = analytical_miss_rate(&kernels::compress(31), 0);
    }
}
