//! Admissible lower bounds on cache behaviour, computed from a trace.
//!
//! The analytical miss-rate model in [`missrate`](crate::missrate) is an
//! *estimate* — it can land on either side of the simulated value — so it
//! cannot prune a sweep without risking a wrong answer. This module provides
//! the rigorous counterpart: a [`TraceFootprint`] holds, for one access
//! trace at one line size,
//!
//! * the **exact** number of line-level accesses the simulator will count
//!   (after splitting accesses that span a line boundary), and
//! * the number of **distinct lines** touched — a true lower bound on the
//!   misses of *any* cold-started cache, of any size, associativity or
//!   replacement policy, because every distinct line's first touch must miss.
//!
//! Both quantities depend only on the trace and the line size, never on the
//! cache geometry, which is what makes a bound built from them admissible
//! for branch-and-bound pruning over `(T, S, B)` at fixed `L`.
//!
//! The splitting rule mirrors `memsim::Simulator::step` exactly (one access
//! per line touched, sizes clamped to ≥ 1 byte) so the access count matches
//! the simulator's `reads + writes` bitwise, not just approximately.

use std::collections::HashSet;

/// Exact access count and compulsory-miss floor for one trace at one line
/// size.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceFootprint {
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Line-level accesses after splitting (what the simulator counts).
    pub accesses: u64,
    /// Number of distinct lines touched.
    pub distinct_lines: u64,
}

impl TraceFootprint {
    /// Scans `events` — `(address, size_in_bytes)` pairs — once, applying
    /// the simulator's line-splitting rule.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two (mirroring the cache
    /// config validation).
    pub fn analyze<I>(line_bytes: u64, events: I) -> Self
    where
        I: IntoIterator<Item = (u64, u32)>,
    {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two, got {line_bytes}"
        );
        let shift = line_bytes.trailing_zeros();
        let mut accesses = 0u64;
        let mut lines = HashSet::new();
        for (addr, size) in events {
            let size = size.max(1) as u64;
            let first_line = addr >> shift;
            let last_line = (addr + size - 1) >> shift;
            accesses += last_line - first_line + 1;
            for l in first_line..=last_line {
                lines.insert(l);
            }
        }
        TraceFootprint {
            line_bytes,
            accesses,
            distinct_lines: lines.len() as u64,
        }
    }

    /// Lower bound on misses for any cold-started cache replaying this
    /// trace: the compulsory misses.
    pub fn min_misses(&self) -> u64 {
        self.distinct_lines
    }

    /// Upper bound on hits (`accesses − min_misses`).
    pub fn max_hits(&self) -> u64 {
        self.accesses - self.distinct_lines
    }

    /// Lower bound on the miss rate (0 for an empty trace).
    pub fn min_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.distinct_lines as f64 / self.accesses as f64
        }
    }

    /// Total bytes of distinct lines touched — the trace's memory footprint
    /// rounded to lines.
    pub fn footprint_bytes(&self) -> u64 {
        self.distinct_lines * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::{kernels, AccessKind, DataLayout, TraceGen};

    fn read_accesses(kernel: &loopir::Kernel) -> Vec<(u64, u32)> {
        let layout = DataLayout::natural(kernel);
        TraceGen::new(kernel, &layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| (a.addr, a.size))
            .collect()
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let f = TraceFootprint::analyze(8, std::iter::empty());
        assert_eq!(f.accesses, 0);
        assert_eq!(f.distinct_lines, 0);
        assert_eq!(f.min_miss_rate(), 0.0);
    }

    #[test]
    fn spanning_access_splits_like_the_simulator() {
        // Bytes 6..10 with 8-byte lines touch lines 0 and 1.
        let f = TraceFootprint::analyze(8, [(6u64, 4u32)]);
        assert_eq!(f.accesses, 2);
        assert_eq!(f.distinct_lines, 2);
    }

    #[test]
    fn zero_size_access_counts_once() {
        let f = TraceFootprint::analyze(8, [(3u64, 0u32)]);
        assert_eq!(f.accesses, 1);
        assert_eq!(f.distinct_lines, 1);
    }

    #[test]
    fn repeated_touches_share_a_line() {
        let f = TraceFootprint::analyze(16, [(0u64, 4u32), (4, 4), (12, 4), (16, 4)]);
        assert_eq!(f.accesses, 4);
        assert_eq!(f.distinct_lines, 2);
        assert_eq!(f.max_hits(), 2);
        assert_eq!(f.footprint_bytes(), 32);
    }

    #[test]
    fn compress_footprint_matches_array_extent() {
        // Compress reads every element of one 32×32 int array (4096 B):
        // 961 iterations × 4 reads = 3844 accesses, 4096/L distinct lines.
        let k = kernels::compress(31);
        let accesses = read_accesses(&k);
        for line in [4u64, 8, 16, 32, 64] {
            let f = TraceFootprint::analyze(line, accesses.iter().copied());
            assert_eq!(f.accesses, 3844, "line={line}");
            assert_eq!(f.distinct_lines, 4096 / line, "line={line}");
            assert_eq!(f.footprint_bytes(), 4096, "line={line}");
        }
    }

    #[test]
    fn min_misses_is_admissible_for_every_geometry() {
        use memsim::{CacheConfig, Simulator, TraceEvent};
        let k = kernels::sor(15);
        let accesses = read_accesses(&k);
        for (t, l, s) in [
            (16usize, 4usize, 1usize),
            (64, 8, 2),
            (256, 16, 4),
            (1024, 32, 8),
        ] {
            let f = TraceFootprint::analyze(l as u64, accesses.iter().copied());
            let cfg = CacheConfig::new(t, l, s).unwrap();
            let events = accesses.iter().map(|&(a, sz)| TraceEvent::read(a, sz));
            let report = Simulator::simulate(cfg, events);
            assert!(
                report.stats.misses() >= f.min_misses(),
                "T={t} L={l} S={s}: simulated {} < bound {}",
                report.stats.misses(),
                f.min_misses()
            );
            assert_eq!(report.stats.accesses(), f.accesses);
        }
    }
}
