//! Property-based tests for the static analyses.

use analysis::classes::{partition_cases, partition_classes};
use analysis::min_cache::{class_line_requirement, MinCacheReport};
use analysis::missrate::analytical_miss_rate;
use analysis::placement::optimize_layout;
use loopir::{AffineExpr, ArrayDecl, ArrayId, ArrayRef, Kernel, Loop, LoopNest};
use proptest::prelude::*;

/// Random multi-array stencil kernels.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (
        5usize..12,
        5usize..12,
        1usize..=3,
        proptest::collection::vec((0usize..3, -1i64..=1, -1i64..=1, proptest::bool::ANY), 1..6),
    )
        .prop_map(|(rows, cols, n_arrays, refs)| {
            let arrays: Vec<ArrayDecl> = (0..n_arrays)
                .map(|i| ArrayDecl::new(format!("a{i}"), &[rows, cols], 4))
                .collect();
            let body = refs
                .into_iter()
                .map(|(aid, c0, c1, w)| {
                    let subs = vec![AffineExpr::var(0) + c0, AffineExpr::var(1) + c1];
                    let array = ArrayId(aid % n_arrays);
                    if w {
                        ArrayRef::write(array, subs)
                    } else {
                        ArrayRef::read(array, subs)
                    }
                })
                .collect();
            let nest = LoopNest {
                loops: vec![Loop::new(1, rows as i64 - 2), Loop::new(1, cols as i64 - 2)],
                refs: body,
            };
            Kernel::new("Gen", arrays, nest)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn classes_cover_every_distinct_read(kernel in arb_kernel()) {
        let classes = partition_classes(&kernel, true);
        let mut distinct = std::collections::HashSet::new();
        for r in &kernel.nest.refs {
            if r.kind == loopir::AccessKind::Read {
                distinct.insert((r.array, r.constant_vector()));
            }
        }
        let covered: usize = classes.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(covered, distinct.len());
    }

    #[test]
    fn class_members_share_array_h_and_outer_constants(kernel in arb_kernel()) {
        let depth = kernel.nest.depth();
        for c in partition_classes(&kernel, false) {
            for &m in &c.members {
                let r = &kernel.nest.refs[m];
                prop_assert_eq!(r.array, c.array);
                prop_assert_eq!(r.h_matrix(depth), c.h.clone());
                let cv = r.constant_vector();
                prop_assert_eq!(&cv[..cv.len() - 1], &c.outer_constants[..]);
            }
        }
    }

    #[test]
    fn cases_partition_the_classes(kernel in arb_kernel()) {
        let classes = partition_classes(&kernel, false);
        let cases = partition_cases(&classes);
        let mut seen = vec![false; classes.len()];
        for group in &cases {
            for &i in group {
                prop_assert!(!seen[i], "class {} in two cases", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn line_requirement_is_at_least_one_and_weakly_decreasing(kernel in arb_kernel()) {
        let classes = partition_classes(&kernel, true);
        for c in &classes {
            let mut prev: Option<u64> = None;
            for le in [1u64, 2, 4, 8, 16] {
                let need = class_line_requirement(&kernel, c, le);
                prop_assert!(need >= 1);
                // The formula's +1/+2 slack keeps it within one line of
                // monotone; allow that slack.
                if let Some(p) = prev {
                    prop_assert!(need <= p + 1);
                }
                prev = Some(need);
            }
        }
    }

    #[test]
    fn min_cache_bound_scales_with_line(kernel in arb_kernel(), ls in 2u32..6) {
        let line = 1u64 << ls;
        let report = MinCacheReport::analyze(&kernel, line);
        prop_assert!(report.min_cache_bytes() >= line * report.lines_per_class.len() as u64);
        prop_assert!(report.min_pow2_cache_bytes().is_power_of_two());
        prop_assert!(report.min_pow2_cache_bytes() >= report.min_cache_bytes());
    }

    #[test]
    fn placement_reports_are_internally_consistent(kernel in arb_kernel(), g in 0usize..3) {
        let (t, l) = [(64u64, 8u64), (128, 16), (256, 8)][g];
        let report = optimize_layout(&kernel, t, l).expect("placement succeeds");
        prop_assert!(report.layout.check_no_overlap(&kernel).is_ok());
        prop_assert!(report.colliding_classes <= report.total_classes);
        for &line_idx in &report.leader_lines {
            prop_assert!(line_idx < t / l);
        }
        if report.conflict_free {
            prop_assert_eq!(report.colliding_classes, 0);
        }
    }

    #[test]
    fn analytical_miss_rate_is_a_rate(kernel in arb_kernel(), ls in 2u32..6) {
        let mr = analytical_miss_rate(&kernel, 1 << ls);
        prop_assert!((0.0..=1.0).contains(&mr));
    }

    #[test]
    fn analytical_miss_rate_weakly_decreases_with_line(kernel in arb_kernel()) {
        let mut prev = f64::INFINITY;
        for l in [4u64, 8, 16, 32] {
            let mr = analytical_miss_rate(&kernel, l);
            prop_assert!(mr <= prev + 1e-12);
            prev = mr;
        }
    }
}
