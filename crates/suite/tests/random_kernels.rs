//! Property-based tests over randomly generated affine kernels.

use analysis::placement::optimize_layout;
use loopir::transform::tile_all;
use loopir::{
    AccessKind, AffineExpr, ArrayDecl, ArrayId, ArrayRef, DataLayout, Kernel, Loop, LoopNest,
    TraceGen,
};
use memsim::{CacheConfig, Simulator, TraceEvent};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random rectangular 2-D stencil kernel: 1–3 arrays of the same shape,
/// 2–6 references with constant offsets in {-1, 0, 1}, loops over the
/// interior so every reference stays in bounds.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    let dims = (5usize..12, 5usize..12);
    let n_arrays = 1usize..=3;
    let refs = proptest::collection::vec(
        (0usize..3, -1i64..=1, -1i64..=1, proptest::bool::ANY),
        2..=6,
    );
    (dims, n_arrays, refs).prop_map(|((rows, cols), n_arrays, refs)| {
        let arrays: Vec<ArrayDecl> = (0..n_arrays)
            .map(|i| ArrayDecl::new(format!("a{i}"), &[rows, cols], 4))
            .collect();
        let body: Vec<ArrayRef> = refs
            .into_iter()
            .map(|(aid, c0, c1, is_write)| {
                let subs = vec![AffineExpr::var(0) + c0, AffineExpr::var(1) + c1];
                let array = ArrayId(aid % n_arrays);
                if is_write {
                    ArrayRef::write(array, subs)
                } else {
                    ArrayRef::read(array, subs)
                }
            })
            .collect();
        let nest = LoopNest {
            loops: vec![Loop::new(1, rows as i64 - 2), Loop::new(1, cols as i64 - 2)],
            refs: body,
        };
        Kernel::new("random", arrays, nest)
    })
}

fn address_multiset(kernel: &Kernel, layout: &DataLayout) -> BTreeMap<u64, usize> {
    let mut m = BTreeMap::new();
    for a in TraceGen::new(kernel, layout) {
        *m.entry(a.addr).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trace_length_is_iterations_times_refs(kernel in arb_kernel()) {
        let layout = DataLayout::natural(&kernel);
        let n = TraceGen::new(&kernel, &layout).count();
        let expected = kernel.nest.const_iteration_count().unwrap() as usize
            * kernel.nest.refs.len();
        prop_assert_eq!(n, expected);
    }

    #[test]
    fn tiling_preserves_the_address_multiset(kernel in arb_kernel(), b in 1u64..6) {
        let layout = DataLayout::natural(&kernel);
        let tiled = tile_all(&kernel, b);
        prop_assert_eq!(
            address_multiset(&kernel, &layout),
            address_multiset(&tiled, &layout)
        );
    }

    #[test]
    fn optimized_layouts_never_overlap(kernel in arb_kernel(), geom in 0usize..4) {
        let (t, l) = [(32u64, 4u64), (64, 8), (128, 16), (256, 8)][geom];
        let report = optimize_layout(&kernel, t, l).unwrap();
        prop_assert!(report.layout.check_no_overlap(&kernel).is_ok());
        // Padding stays within one cache size per array (pitch) plus one
        // per gap (base), times rows for the pitch component.
        let rows = kernel.arrays[0].dims[0] as u64;
        let bound = kernel.arrays.len() as u64 * t * (rows + 1);
        prop_assert!(report.padding_bytes <= bound);
    }

    #[test]
    fn optimized_evaluation_never_misses_more_than_natural(kernel in arb_kernel()) {
        // The raw optimizer is a heuristic (padding can enlarge a borderline
        // working set), but the Evaluator arbitrates against the natural
        // layout, so at the evaluation level the guarantee is strict.
        use memexplore::{CacheDesign, Evaluator};
        let d = CacheDesign::new(64, 8, 1, 1);
        let optimized = Evaluator::default().evaluate(&kernel, d).miss_rate;
        let natural = Evaluator::default().unoptimized().evaluate(&kernel, d).miss_rate;
        prop_assert!(
            optimized <= natural + 1e-12,
            "optimized {} vs natural {}", optimized, natural
        );
    }

    #[test]
    fn lru_inclusion_property_holds(kernel in arb_kernel()) {
        // A fully-associative LRU cache of twice the capacity never misses
        // more (stack-algorithm inclusion).
        let layout = DataLayout::natural(&kernel);
        let events: Vec<TraceEvent> = TraceGen::new(&kernel, &layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size))
            .collect();
        let small = CacheConfig::fully_associative(64, 8).unwrap();
        let large = CacheConfig::fully_associative(128, 8).unwrap();
        let m_small = Simulator::simulate(small, events.iter().copied()).stats.misses();
        let m_large = Simulator::simulate(large, events).stats.misses();
        prop_assert!(m_large <= m_small, "large {} > small {}", m_large, m_small);
    }

    #[test]
    fn conflict_free_reports_imply_zero_conflict_misses(kernel in arb_kernel()) {
        let report = optimize_layout(&kernel, 128, 8).unwrap();
        prop_assume!(report.conflict_free);
        let cfg = CacheConfig::new(128, 8, 1).unwrap();
        let events = TraceGen::new(&kernel, &report.layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        let sim = Simulator::simulate_classified(cfg, events);
        prop_assert_eq!(sim.miss_classes.unwrap().conflict, 0);
    }
}
