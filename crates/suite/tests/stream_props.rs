//! Property tests of the streaming trace pipeline: chunked replay must be
//! a *pure refactoring* of materialized replay.
//!
//! Three laws:
//!
//! 1. **Chunk invariance** — for any trace and any chunk capacity in
//!    `1..=4096`, feeding a [`Simulator`] or [`ReplayBank`] chunk by
//!    chunk produces reports byte-identical to one whole-slice pass, and
//!    a [`TraceWorkload`] sweep produces bit-identical records at every
//!    capacity (lane state persists across `feed` calls, so chunking is
//!    invisible).
//! 2. **Error hygiene** — a malformed record mid-stream surfaces as a
//!    typed [`TraceSourceError::Parse`], and the events delivered before
//!    the failure are exactly a prefix of the valid records: nothing
//!    from the poisoned chunk leaks, and a prepared workload refuses the
//!    trace outright.
//! 3. **Streamed ≡ materialized** — for every paper kernel, the streamed
//!    sweep over the trace grid equals the materialized bank replay
//!    record for record, so the explore/pareto selections agree too.

use loopir::{kernels, AccessKind, DataLayout, TraceGen};
use memexplore::{select, CacheDesign, Evaluator, Explorer, TraceError, TraceWorkload};
use memsim::din::{write_din, DinLabel, DinRecord};
use memsim::source::din_event;
use memsim::{
    BusEncoding, CacheConfig, DinSource, IterSource, ReplayBank, Simulator, TraceEvent,
    TraceSource, TraceSourceError,
};
use proptest::prelude::*;

/// Renders records as `.din` text (label + hex address per line).
fn din_text(records: &[DinRecord]) -> String {
    let mut buf = Vec::new();
    write_din(&mut buf, records).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("din text is ASCII")
}

/// A random `.din` trace: reads, writes, and ifetches over a small
/// address range (small enough that hits, evictions, and writebacks all
/// actually occur).
fn arb_records() -> impl Strategy<Value = Vec<DinRecord>> {
    proptest::collection::vec((0u8..3, 0u64..4096), 1..400).prop_map(|rows| {
        rows.into_iter()
            .map(|(label, addr)| DinRecord {
                label: match label {
                    0 => DinLabel::Read,
                    1 => DinLabel::Write,
                    _ => DinLabel::Ifetch,
                },
                addr,
            })
            .collect()
    })
}

fn events_of(records: &[DinRecord]) -> Vec<TraceEvent> {
    records.iter().map(|r| din_event(r.label, r.addr)).collect()
}

/// A tiny design grid for the end-to-end sweeps (tiling pinned at 1, as
/// the trace grid requires).
fn small_designs() -> Vec<CacheDesign> {
    vec![
        CacheDesign::new(64, 8, 1, 1),
        CacheDesign::new(128, 8, 2, 1),
        CacheDesign::new(256, 16, 1, 1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simulator_reports_are_chunk_invariant(
        records in arb_records(),
        cap in 1usize..=4096,
    ) {
        let events = events_of(&records);
        let config = CacheConfig::new(64, 8, 2).expect("valid geometry");
        let mut whole = Simulator::with_options(config, BusEncoding::Gray, true);
        whole.feed(&events);
        let whole = whole.finish();
        let mut chunked = Simulator::with_options(config, BusEncoding::Gray, true);
        for chunk in events.chunks(cap) {
            chunked.feed(chunk);
        }
        let chunked = chunked.finish();
        prop_assert_eq!(format!("{whole:?}"), format!("{chunked:?}"));
    }

    #[test]
    fn replay_bank_reports_are_chunk_invariant(
        records in arb_records(),
        cap in 1usize..=4096,
    ) {
        let events = events_of(&records);
        let configs: Vec<CacheConfig> = small_designs()
            .iter()
            .map(|d| d.cache_config().expect("valid geometry"))
            .collect();
        let mut whole = ReplayBank::with_options(&configs, BusEncoding::Gray, true);
        whole.feed(&events);
        let whole = whole.finish();
        let mut chunked = ReplayBank::with_options(&configs, BusEncoding::Gray, true);
        for chunk in events.chunks(cap) {
            chunked.feed(chunk);
        }
        let chunked = chunked.finish();
        prop_assert_eq!(format!("{whole:?}"), format!("{chunked:?}"));
    }

    #[test]
    fn streamed_sweep_is_chunk_capacity_invariant(
        records in arb_records(),
        cap in 1usize..=4096,
    ) {
        let text = din_text(&records);
        let designs = small_designs();
        let explorer = Explorer::default();
        let base = TraceWorkload::from_text("t.din", text.clone()).expect("valid trace");
        let (base_records, _) = explorer
            .explore_trace(&base, &designs)
            .expect("streamed sweep succeeds");
        let varied = TraceWorkload::from_text("t.din", text)
            .expect("valid trace")
            .with_chunk_capacity(cap);
        let (varied_records, _) = explorer
            .explore_trace(&varied, &designs)
            .expect("streamed sweep succeeds");
        prop_assert_eq!(base_records, varied_records);
        prop_assert_eq!(base.fingerprint(), varied.fingerprint());
    }

    #[test]
    fn malformed_din_mid_stream_is_typed_and_leak_free(
        records in arb_records(),
        cap in 1usize..=64,
        pos_frac in 0.0f64..1.0,
    ) {
        let pos = ((records.len() as f64) * pos_frac) as usize;
        let expected = events_of(&records[..pos]);
        let mut lines: Vec<String> = din_text(&records)
            .lines()
            .map(str::to_string)
            .collect();
        lines.insert(pos, "7 not-an-address".to_string());
        let text = lines.join("\n");

        // A prepared workload refuses the trace outright (the fingerprint
        // pass sees the bad record).
        let err = TraceWorkload::from_text("bad.din", text.clone())
            .expect_err("corrupt trace must be rejected");
        prop_assert!(
            matches!(err, TraceError::Source(TraceSourceError::Parse { .. })),
            "unexpected error: {err}"
        );

        // Chunked streaming delivers at most the records before the bad
        // line, verbatim, then the typed parse error — never anything at
        // or past it.
        let mut src = DinSource::from_reader(text.as_bytes(), "bad.din");
        let mut delivered: Vec<TraceEvent> = Vec::new();
        let mut buf: Vec<TraceEvent> = Vec::new();
        let mut parse_err = None;
        loop {
            match src.fill(&mut buf, cap) {
                Ok(0) => break,
                Ok(n) => delivered.extend_from_slice(&buf[..n]),
                Err(e) => {
                    parse_err = Some(e);
                    break;
                }
            }
        }
        let err = parse_err.expect("corrupt trace must fail mid-stream");
        prop_assert!(
            matches!(err, TraceSourceError::Parse { .. }),
            "unexpected error: {err}"
        );
        prop_assert!(delivered.len() <= pos, "{} > {pos}", delivered.len());
        prop_assert_eq!(&delivered[..], &expected[..delivered.len()]);
    }
}

#[test]
fn tracegen_streams_through_iter_source_without_materializing() {
    // The third `TraceSource` implementation: chunked emission straight
    // off the `loopir::TraceGen` iterator, no intermediate `Vec` of the
    // whole trace. Chunk-fed replay must equal the materialized pass.
    let kernel = kernels::compress(15);
    let layout = DataLayout::natural(&kernel);
    let to_event = |a: loopir::MemoryAccess| TraceEvent {
        addr: a.addr,
        size: a.size,
        is_write: a.kind == AccessKind::Write,
    };
    let configs: Vec<CacheConfig> = small_designs()
        .iter()
        .map(|d| d.cache_config().expect("valid geometry"))
        .collect();

    let mut src = IterSource::new(TraceGen::new(&kernel, &layout).map(to_event));
    let mut streamed = ReplayBank::with_options(&configs, BusEncoding::Gray, true);
    let mut buf: Vec<TraceEvent> = Vec::new();
    loop {
        let n = src.fill(&mut buf, 64).expect("iterator sources never fail");
        if n == 0 {
            break;
        }
        streamed.feed(&buf[..n]);
    }
    let streamed = streamed.finish();

    let events: Vec<TraceEvent> = TraceGen::new(&kernel, &layout).map(to_event).collect();
    let mut whole = ReplayBank::with_options(&configs, BusEncoding::Gray, true);
    whole.feed(&events);
    assert_eq!(format!("{:?}", whole.finish()), format!("{streamed:?}"));
}

#[test]
fn truncated_record_is_rejected_not_padded() {
    // A final line with the label but no address is a parse error, not a
    // silently dropped or zero-padded event.
    let err = TraceWorkload::from_text("cut.din", "0 10\n1 20\n0")
        .expect_err("truncated record must be rejected");
    assert!(
        matches!(err, TraceError::Source(TraceSourceError::Parse { .. })),
        "unexpected error: {err}"
    );
}

#[test]
fn streamed_paper_kernel_sweeps_match_materialized_replay() {
    let explorer = Explorer::default();
    let evaluator = Evaluator::default();
    let designs = TraceWorkload::design_space().designs();
    for kernel in kernels::all_paper_kernels() {
        let layout = DataLayout::natural(&kernel);
        let records: Vec<DinRecord> = TraceGen::new(&kernel, &layout)
            .map(|a| DinRecord {
                label: if a.kind == AccessKind::Read {
                    DinLabel::Read
                } else {
                    DinLabel::Write
                },
                addr: a.addr,
            })
            .collect();
        let events = events_of(&records);
        let workload = TraceWorkload::from_text(format!("{}.din", kernel.name), din_text(&records))
            .expect("valid trace")
            .with_chunk_capacity(997);
        let (streamed, telemetry) = explorer
            .explore_trace(&workload, &designs)
            .expect("streamed sweep succeeds");

        // Materialized reference: the same events through the whole-slice
        // bank replay path.
        let bank: Vec<(CacheDesign, bool)> = designs.iter().map(|&d| (d, false)).collect();
        let reference = evaluator.evaluate_bank_with_trace(&bank, &events);
        assert_eq!(streamed, reference, "{}", kernel.name);

        // The downstream selections (explore's minima, pareto's frontier)
        // therefore agree bit-for-bit as well.
        assert_eq!(
            select::min_energy(&streamed),
            select::min_energy(&reference),
            "{}",
            kernel.name
        );
        assert_eq!(
            select::pareto3(&streamed),
            select::pareto3(&reference),
            "{}",
            kernel.name
        );
        assert_eq!(workload.events(), records.len() as u64, "{}", kernel.name);
        assert!(telemetry.peak_chunk_bytes > 0, "{}", kernel.name);
    }
}
