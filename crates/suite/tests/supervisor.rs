//! Acceptance tests of the fault-isolated sweep supervisor.
//!
//! The contract under test: a clean supervised run is bit-identical to a
//! plain run; an injected panic quarantines only the affected design(s)
//! (or recovers them via the per-design fallback when the fused bank
//! panicked) while every other record stays bit-identical; a cooperative
//! deadline yields a well-formed partial result; and a resumed sweep
//! reproduces an uninterrupted one exactly. Fault-injection tests are
//! compiled only with `--features fault-injection` — the plan is inert
//! otherwise.

use loopir::kernels;
use loopir::Kernel;
use memexplore::supervisor::sweep_id;
use memexplore::{Checkpoint, CheckpointPolicy, DesignSpace, Engine, Explorer, SweepOptions};
use std::path::PathBuf;
use std::time::Duration;

/// Self-cleaning scratch dir for checkpoint sidecars.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("memx-sup-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        Self { dir }
    }

    fn ckpt(&self) -> PathBuf {
        self.dir.join("sweep.ckpt")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn assert_clean_supervised_equivalence(kernel: &Kernel, engine: Engine) {
    let space = DesignSpace::paper();
    let designs = space.designs();
    let explorer = Explorer::default().with_engine(engine);
    let (clean, _) = explorer.explore_designs_with_telemetry(kernel, &designs);
    let outcome = explorer
        .explore_supervised(kernel, &designs, &SweepOptions::default())
        .expect("supervised sweep succeeds");
    assert!(outcome.is_complete(), "{}: incomplete", kernel.name);
    assert!(outcome.errors.is_empty(), "{}", kernel.name);
    assert_eq!(
        outcome.completed_records(),
        clean,
        "{}: supervised records diverged from the plain engine",
        kernel.name
    );
    let t = &outcome.telemetry;
    assert_eq!(t.designs_quarantined, 0);
    assert_eq!(t.designs_retried, 0);
    assert_eq!(t.records_resumed, 0);
    assert!(!t.cancelled);
}

#[test]
fn clean_supervised_run_is_bit_identical_compress() {
    let k = kernels::compress(31);
    assert_clean_supervised_equivalence(&k, Engine::Fused);
    assert_clean_supervised_equivalence(&k, Engine::PerDesign);
}

#[test]
fn clean_supervised_run_is_bit_identical_sor() {
    let k = kernels::sor(31);
    assert_clean_supervised_equivalence(&k, Engine::Fused);
    assert_clean_supervised_equivalence(&k, Engine::PerDesign);
}

#[test]
fn deadline_zero_yields_well_formed_empty_partial_result() {
    let kernel = kernels::compress(31);
    let designs = DesignSpace::paper().designs();
    let options = SweepOptions {
        deadline: Some(Duration::ZERO),
        ..SweepOptions::default()
    };
    let outcome = Explorer::default()
        .explore_supervised(&kernel, &designs, &options)
        .expect("cancelled sweep still returns a well-formed outcome");
    assert!(outcome.telemetry.cancelled, "deadline must flag telemetry");
    assert!(outcome.errors.is_empty());
    assert_eq!(outcome.records.len(), designs.len());
    assert!(
        outcome.records.iter().all(Option::is_none),
        "a zero deadline cancels before any unit starts"
    );
    assert_eq!(outcome.telemetry.designs_evaluated, 0);
}

#[test]
fn generous_deadline_completes_normally() {
    let kernel = kernels::dequant(31);
    let designs = DesignSpace::paper().designs();
    let explorer = Explorer::default();
    let (clean, _) = explorer.explore_designs_with_telemetry(&kernel, &designs);
    let options = SweepOptions {
        deadline: Some(Duration::from_secs(3600)),
        ..SweepOptions::default()
    };
    let outcome = explorer
        .explore_supervised(&kernel, &designs, &options)
        .expect("sweep succeeds");
    assert!(!outcome.telemetry.cancelled);
    assert_eq!(outcome.completed_records(), clean);
}

/// The named resume regression: a "killed" sweep leaves — by the atomic
/// write contract — a valid checkpoint holding some subset of the
/// records. Resuming from any such subset must reproduce the
/// uninterrupted run bit-identically. (The CI smoke job performs the
/// literal SIGKILL variant of this test against the binary.)
#[test]
fn resume_after_kill_bit_identity_compress() {
    let kernel = kernels::compress(31);
    let designs = DesignSpace::paper().designs();
    let explorer = Explorer::default();
    let (clean, _) = explorer.explore_designs_with_telemetry(&kernel, &designs);

    for take in [1, designs.len() / 2, designs.len() - 1] {
        let scratch = Scratch::new(&format!("resume-{take}"));
        let ck = Checkpoint {
            sweep_id: sweep_id(&kernel, &designs, &explorer.evaluator),
            entries: clean.iter().cloned().enumerate().take(take).collect(),
        };
        ck.write_atomic(&scratch.ckpt()).expect("checkpoint writes");
        let options = SweepOptions {
            checkpoint: Some(CheckpointPolicy {
                path: scratch.ckpt(),
                every: 64,
                resume: true,
            }),
            ..SweepOptions::default()
        };
        let outcome = explorer
            .explore_supervised(&kernel, &designs, &options)
            .expect("resumed sweep succeeds");
        assert!(outcome.is_complete());
        assert_eq!(outcome.telemetry.records_resumed, take);
        assert_eq!(
            outcome.completed_records(),
            clean,
            "resume from {take} records diverged from the uninterrupted sweep"
        );
        // The final flush leaves a checkpoint of the whole sweep behind.
        let final_ck = Checkpoint::read(&scratch.ckpt()).expect("final checkpoint is valid");
        assert_eq!(final_ck.entries.len(), designs.len());
        assert!(outcome.telemetry.checkpoints_written >= 1);
    }
}

#[test]
fn resume_with_missing_checkpoint_starts_fresh() {
    let kernel = kernels::dequant(31);
    let designs = DesignSpace::paper().designs();
    let explorer = Explorer::default();
    let (clean, _) = explorer.explore_designs_with_telemetry(&kernel, &designs);
    let scratch = Scratch::new("fresh");
    let options = SweepOptions {
        checkpoint: Some(CheckpointPolicy {
            path: scratch.ckpt(),
            every: 100,
            resume: true,
        }),
        ..SweepOptions::default()
    };
    let outcome = explorer
        .explore_supervised(&kernel, &designs, &options)
        .expect("fresh resume succeeds");
    assert_eq!(outcome.telemetry.records_resumed, 0);
    assert_eq!(outcome.completed_records(), clean);
    assert!(scratch.ckpt().exists());
}

#[cfg(feature = "fault-injection")]
mod injected {
    use super::*;
    use memexplore::{FaultPlan, Record};

    /// Reference records for comparing fault-isolated runs.
    fn clean_records(kernel: &Kernel, designs: &[memexplore::CacheDesign]) -> Vec<Record> {
        Explorer::default()
            .explore_designs_with_telemetry(kernel, designs)
            .0
    }

    /// A panicking fused bank scan must fall back to the per-design
    /// engine and recover *every* member bit-identically.
    fn assert_fused_fallback_recovers(kernel: &Kernel, group: usize) {
        let designs = DesignSpace::paper().designs();
        let clean = clean_records(kernel, &designs);
        let options = SweepOptions {
            fault: FaultPlan {
                panic_group: Some(group),
                ..FaultPlan::none()
            },
            ..SweepOptions::default()
        };
        let outcome = Explorer::default()
            .with_engine(Engine::Fused)
            .explore_supervised(kernel, &designs, &options)
            .expect("sweep survives the injected panic");
        assert!(
            outcome.is_complete(),
            "{}: fallback must recover",
            kernel.name
        );
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        assert!(
            outcome.telemetry.designs_retried > 0,
            "{}: the poisoned bank must be retried per design",
            kernel.name
        );
        assert_eq!(
            outcome.completed_records(),
            clean,
            "{}: recovered records diverged",
            kernel.name
        );
    }

    /// A design that panics on the per-design engine is quarantined; all
    /// other records stay bit-identical to a clean run.
    fn assert_per_design_quarantine(kernel: &Kernel, victim: usize) {
        let designs = DesignSpace::paper().designs();
        let clean = clean_records(kernel, &designs);
        let options = SweepOptions {
            fault: FaultPlan {
                panic_design: Some(victim),
                ..FaultPlan::none()
            },
            ..SweepOptions::default()
        };
        let outcome = Explorer::default()
            .with_engine(Engine::PerDesign)
            .explore_supervised(kernel, &designs, &options)
            .expect("sweep survives the injected panic");
        assert_eq!(outcome.errors.len(), 1, "{}", kernel.name);
        assert_eq!(outcome.errors[0].design_index, victim);
        assert_eq!(outcome.errors[0].engine, "per-design");
        assert!(outcome.errors[0].message.contains("injected fault"));
        assert_eq!(outcome.telemetry.designs_quarantined, 1);
        for (i, slot) in outcome.records.iter().enumerate() {
            if i == victim {
                assert!(
                    slot.is_none(),
                    "{}: victim must be quarantined",
                    kernel.name
                );
            } else {
                assert_eq!(
                    slot.as_ref(),
                    Some(&clean[i]),
                    "{}: design {i} diverged",
                    kernel.name
                );
            }
        }
    }

    #[test]
    fn fused_bank_panic_recovers_via_fallback_compress() {
        let k = kernels::compress(31);
        for group in [0, 3] {
            assert_fused_fallback_recovers(&k, group);
        }
    }

    #[test]
    fn fused_bank_panic_recovers_via_fallback_sor() {
        assert_fused_fallback_recovers(&kernels::sor(31), 1);
    }

    #[test]
    fn per_design_panic_quarantines_only_the_victim_compress() {
        let k = kernels::compress(31);
        for victim in [0, 17] {
            assert_per_design_quarantine(&k, victim);
        }
    }

    #[test]
    fn per_design_panic_quarantines_only_the_victim_sor() {
        assert_per_design_quarantine(&kernels::sor(31), 42);
    }

    /// Keys are interned in design order, so trace group 0 always
    /// contains design 0: panicking both the group and design 0's
    /// fallback quarantines exactly design 0 while the rest of the bank
    /// is recovered per design.
    #[test]
    fn double_fault_quarantines_only_the_twice_panicking_design() {
        let kernel = kernels::compress(31);
        let designs = DesignSpace::paper().designs();
        let clean = clean_records(&kernel, &designs);
        let options = SweepOptions {
            fault: FaultPlan {
                panic_group: Some(0),
                panic_design: Some(0),
                ..FaultPlan::none()
            },
            ..SweepOptions::default()
        };
        let outcome = Explorer::default()
            .with_engine(Engine::Fused)
            .explore_supervised(&kernel, &designs, &options)
            .expect("sweep survives both injected panics");
        assert_eq!(outcome.errors.len(), 1, "{:?}", outcome.errors);
        assert_eq!(outcome.errors[0].design_index, 0);
        assert_eq!(outcome.errors[0].engine, "fallback");
        assert!(outcome.records[0].is_none());
        for (i, slot) in outcome.records.iter().enumerate().skip(1) {
            assert_eq!(slot.as_ref(), Some(&clean[i]), "design {i} diverged");
        }
    }

    /// Seeded plans pick their fault site reproducibly; any seed must
    /// leave every unaffected record bit-identical.
    #[test]
    fn seeded_fault_plans_isolate_on_both_engines() {
        let kernel = kernels::dequant(31);
        let designs = DesignSpace::paper().designs();
        let clean = clean_records(&kernel, &designs);
        for seed in [1, 2] {
            let plan = FaultPlan::seeded(seed, 4, designs.len());
            for engine in [Engine::Fused, Engine::PerDesign] {
                let options = SweepOptions {
                    fault: plan.clone(),
                    ..SweepOptions::default()
                };
                let outcome = Explorer::default()
                    .with_engine(engine)
                    .explore_supervised(&kernel, &designs, &options)
                    .expect("sweep survives the seeded faults");
                for (i, slot) in outcome.records.iter().enumerate() {
                    if let Some(r) = slot {
                        assert_eq!(r, &clean[i], "seed {seed}: design {i} diverged");
                    }
                }
                assert!(
                    outcome.records.iter().filter(|r| r.is_none()).count() <= 1,
                    "seed {seed}: at most the doubly-faulted design may be lost"
                );
            }
        }
    }

    /// A failed checkpoint flush must not stop the sweep or corrupt the
    /// sidecar: the previous checkpoint stays valid and the run completes.
    #[test]
    fn failed_checkpoint_write_is_counted_not_fatal() {
        let kernel = kernels::compress(31);
        let designs = DesignSpace::paper().designs();
        let clean = clean_records(&kernel, &designs);
        let scratch = Scratch::new("failed-flush");
        let options = SweepOptions {
            checkpoint: Some(CheckpointPolicy {
                path: scratch.ckpt(),
                every: 50,
                resume: false,
            }),
            fault: FaultPlan {
                fail_checkpoint_write: Some(0),
                ..FaultPlan::none()
            },
            ..SweepOptions::default()
        };
        let outcome = Explorer::default()
            .explore_supervised(&kernel, &designs, &options)
            .expect("sweep completes despite the failed flush");
        assert!(outcome.is_complete());
        assert_eq!(outcome.completed_records(), clean);
        assert!(outcome.telemetry.checkpoints_failed >= 1);
        assert!(outcome.telemetry.checkpoints_written >= 1);
        let ck = Checkpoint::read(&scratch.ckpt()).expect("sidecar is a valid checkpoint");
        assert_eq!(ck.entries.len(), designs.len());
    }
}
