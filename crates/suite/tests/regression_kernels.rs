//! Shrunk counterexamples from past property-test failures, promoted to
//! named deterministic tests.
//!
//! The vendored proptest does not persist or replay
//! `.proptest-regressions` seed files, so the kernels those files record
//! would otherwise only be re-hit by luck. Each kernel below is the
//! minimal counterexample proptest shrank a historical failure to
//! (reconstructed verbatim from the seed comments); every invariant of
//! the originating suite runs against it on every `cargo test`, not just
//! when the RNG happens to land nearby.

use analysis::classes::{partition_cases, partition_classes};
use analysis::min_cache::MinCacheReport;
use analysis::missrate::analytical_miss_rate;
use analysis::placement::optimize_layout;
use loopir::transform::tile_all;
use loopir::{
    AccessKind, AffineExpr, ArrayDecl, ArrayId, ArrayRef, DataLayout, Kernel, Loop, LoopNest,
    TraceGen,
};
use memexplore::{select, CacheDesign, DesignSpace, Evaluator, Explorer, Objective, SearchOptions};
use memsim::{CacheConfig, Replacement, Simulator, TraceEvent, WritePolicy};
use std::collections::BTreeMap;

/// `tests/random_kernels.proptest-regressions` seed b93d340a: three 5×6
/// arrays, reads of `a1[i0][i1]`, `a0[i0+1][i1]`, `a0[i0][i1-1]`.
fn seed_three_arrays_offset_reads() -> Kernel {
    let arrays: Vec<ArrayDecl> = (0..3)
        .map(|i| ArrayDecl::new(format!("a{i}"), &[5, 6], 4))
        .collect();
    let refs = vec![
        ArrayRef::read(ArrayId(1), vec![AffineExpr::var(0), AffineExpr::var(1)]),
        ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0) + 1, AffineExpr::var(1)]),
        ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0), AffineExpr::var(1) - 1]),
    ];
    Kernel::new(
        "SeedB93d",
        arrays,
        LoopNest {
            loops: vec![Loop::new(1, 3), Loop::new(1, 4)],
            refs,
        },
    )
}

/// `tests/random_kernels.proptest-regressions` seed cc629130: two 6×9
/// arrays, four reads all shifted toward the `i0 - 1` / `i1 - 1` corner.
fn seed_two_arrays_corner_reads() -> Kernel {
    let arrays: Vec<ArrayDecl> = (0..2)
        .map(|i| ArrayDecl::new(format!("a{i}"), &[6, 9], 4))
        .collect();
    let refs = vec![
        ArrayRef::read(
            ArrayId(0),
            vec![AffineExpr::var(0) - 1, AffineExpr::var(1) - 1],
        ),
        ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0) - 1, AffineExpr::var(1)]),
        ArrayRef::read(ArrayId(1), vec![AffineExpr::var(0) - 1, AffineExpr::var(1)]),
        ArrayRef::read(ArrayId(1), vec![AffineExpr::var(0), AffineExpr::var(1) - 1]),
    ];
    Kernel::new(
        "SeedCc62",
        arrays,
        LoopNest {
            loops: vec![Loop::new(1, 4), Loop::new(1, 7)],
            refs,
        },
    )
}

/// `crates/analysis/tests/properties.proptest-regressions` seed 483f5f84:
/// one 5×5 array with a single centred read.
fn seed_single_centred_read() -> Kernel {
    let arrays = vec![ArrayDecl::new("a0", &[5, 5], 4)];
    let refs = vec![ArrayRef::read(
        ArrayId(0),
        vec![AffineExpr::var(0), AffineExpr::var(1)],
    )];
    Kernel::new(
        "Seed483f",
        arrays,
        LoopNest {
            loops: vec![Loop::new(1, 3), Loop::new(1, 3)],
            refs,
        },
    )
}

fn sweep_seeds() -> Vec<Kernel> {
    vec![
        seed_three_arrays_offset_reads(),
        seed_two_arrays_corner_reads(),
    ]
}

fn address_multiset(kernel: &Kernel, layout: &DataLayout) -> BTreeMap<u64, usize> {
    let mut m = BTreeMap::new();
    for a in TraceGen::new(kernel, layout) {
        *m.entry(a.addr).or_insert(0) += 1;
    }
    m
}

#[test]
fn seed_kernels_trace_length_is_iterations_times_refs() {
    for kernel in sweep_seeds() {
        let layout = DataLayout::natural(&kernel);
        let n = TraceGen::new(&kernel, &layout).count();
        let expected =
            kernel.nest.const_iteration_count().unwrap() as usize * kernel.nest.refs.len();
        assert_eq!(n, expected, "{}", kernel.name);
    }
}

#[test]
fn seed_kernels_tiling_preserves_the_address_multiset() {
    for kernel in sweep_seeds() {
        let layout = DataLayout::natural(&kernel);
        for b in 1..6 {
            let tiled = tile_all(&kernel, b);
            assert_eq!(
                address_multiset(&kernel, &layout),
                address_multiset(&tiled, &layout),
                "{} tiled by {b}",
                kernel.name
            );
        }
    }
}

#[test]
fn seed_kernels_optimized_layouts_never_overlap() {
    for kernel in sweep_seeds() {
        for (t, l) in [(32u64, 4u64), (64, 8), (128, 16), (256, 8)] {
            let report = optimize_layout(&kernel, t, l).unwrap();
            assert!(
                report.layout.check_no_overlap(&kernel).is_ok(),
                "{} at T={t} L={l}",
                kernel.name
            );
            let rows = kernel.arrays[0].dims[0] as u64;
            let bound = kernel.arrays.len() as u64 * t * (rows + 1);
            assert!(report.padding_bytes <= bound, "{}", kernel.name);
        }
    }
}

#[test]
fn seed_kernels_optimized_evaluation_never_misses_more_than_natural() {
    for kernel in sweep_seeds() {
        let d = CacheDesign::new(64, 8, 1, 1);
        let optimized = Evaluator::default().evaluate(&kernel, d).miss_rate;
        let natural = Evaluator::default()
            .unoptimized()
            .evaluate(&kernel, d)
            .miss_rate;
        assert!(
            optimized <= natural + 1e-12,
            "{}: optimized {optimized} vs natural {natural}",
            kernel.name
        );
    }
}

#[test]
fn seed_kernels_lru_inclusion_property_holds() {
    for kernel in sweep_seeds() {
        let layout = DataLayout::natural(&kernel);
        let events: Vec<TraceEvent> = TraceGen::new(&kernel, &layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size))
            .collect();
        let small = CacheConfig::fully_associative(64, 8).unwrap();
        let large = CacheConfig::fully_associative(128, 8).unwrap();
        let m_small = Simulator::simulate(small, events.iter().copied())
            .stats
            .misses();
        let m_large = Simulator::simulate(large, events).stats.misses();
        assert!(m_large <= m_small, "{}", kernel.name);
    }
}

#[test]
fn seed_kernels_conflict_free_reports_imply_zero_conflict_misses() {
    for kernel in sweep_seeds() {
        let report = optimize_layout(&kernel, 128, 8).unwrap();
        if !report.conflict_free {
            continue; // the property only constrains conflict-free reports
        }
        let cfg = CacheConfig::new(128, 8, 1).unwrap();
        let events = TraceGen::new(&kernel, &report.layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        let sim = Simulator::simulate_classified(cfg, events);
        assert_eq!(sim.miss_classes.unwrap().conflict, 0, "{}", kernel.name);
    }
}

#[test]
fn search_seed_policy_cost_ties_keep_the_first_sweep_variant() {
    // Found while developing `search_props`: the energy model is
    // replacement- and write-policy-independent, so a grid with policy
    // axes is full of *bitwise-identical* costs. A numeric gap-0 stop
    // (`incumbent − bound ≤ 0`) terminates on the first tie and can
    // return a later-in-sweep-order policy variant; certification must
    // compare full tie-break keys so the incumbent stays bit-identical
    // to the sweep's first-wins minimum.
    let space = DesignSpace {
        cache_sizes: vec![32, 64],
        line_sizes: vec![4, 8],
        assocs: vec![1, 2],
        tilings: vec![1, 2],
        min_lines: 1,
        replacements: vec![Replacement::Lru, Replacement::Fifo, Replacement::Plru],
        write_policies: vec![WritePolicy::default()],
    };
    let explorer = Explorer::default();
    for kernel in sweep_seeds() {
        let records = explorer.explore(&kernel, &space);
        for objective in [Objective::Energy, Objective::Cycles] {
            let out = explorer.search(
                &kernel,
                &space,
                &SearchOptions {
                    objective,
                    ..Default::default()
                },
            );
            assert!(out.complete, "{}/{objective}", kernel.name);
            let oracle = match objective {
                Objective::Energy => select::min_energy(&records),
                _ => select::min_cycles(&records),
            }
            .expect("non-empty");
            assert_eq!(
                out.incumbent.as_ref().expect("incumbent"),
                oracle,
                "{}/{objective}: wrong policy variant survived the tie",
                kernel.name
            );
        }
    }
}

#[test]
fn search_seed_loose_cycles_bound_still_terminates_complete() {
    // Found while developing `search_oracle`: MatMult's cycles bound
    // (derived from the untiled trace's miss floor) is loose enough to
    // prune nothing, which exercises the exhaust-the-heap exit path.
    // The search must still drain every candidate and certify gap 0
    // rather than spinning or reporting an open bound.
    let kernel = loopir::kernels::matmul(7);
    let space = DesignSpace {
        cache_sizes: vec![16, 32, 64],
        line_sizes: vec![4, 8],
        assocs: vec![1, 2],
        tilings: vec![1, 2, 4],
        min_lines: 1,
        ..Default::default()
    };
    let explorer = Explorer::default();
    let records = explorer.explore(&kernel, &space);
    let out = explorer.search(
        &kernel,
        &space,
        &SearchOptions {
            objective: Objective::Cycles,
            ..Default::default()
        },
    );
    assert!(out.complete);
    assert_eq!(out.gap(), 0.0);
    assert_eq!(
        out.incumbent.as_ref().expect("incumbent"),
        select::min_cycles(&records).expect("non-empty")
    );
}

#[test]
fn analysis_seed_classes_cover_every_distinct_read() {
    let kernel = seed_single_centred_read();
    let classes = partition_classes(&kernel, true);
    let covered: usize = classes.iter().map(|c| c.members.len()).sum();
    assert_eq!(covered, 1);
    assert_eq!(classes.len(), 1);
}

#[test]
fn analysis_seed_cases_partition_the_classes() {
    let kernel = seed_single_centred_read();
    let classes = partition_classes(&kernel, false);
    let cases = partition_cases(&classes);
    let total: usize = cases.iter().map(Vec::len).sum();
    assert_eq!(total, classes.len());
}

#[test]
fn analysis_seed_min_cache_bound_scales_with_line() {
    let kernel = seed_single_centred_read();
    let mut prev = 0;
    for ls in 2u32..6 {
        let line = 1u64 << ls;
        let report = MinCacheReport::analyze(&kernel, line);
        assert!(report.total_lines >= 1);
        assert!(report.min_cache_bytes() >= prev, "line {line}");
        prev = report.min_cache_bytes();
    }
}

#[test]
fn analysis_seed_analytical_miss_rate_is_a_weakly_decreasing_rate() {
    let kernel = seed_single_centred_read();
    let mut prev = f64::INFINITY;
    for l in [4u64, 8, 16, 32] {
        let mr = analytical_miss_rate(&kernel, l);
        assert!((0.0..=1.0).contains(&mr), "line {l}: {mr}");
        assert!(mr <= prev, "line {l}: {mr} > {prev}");
        prev = mr;
    }
}

#[test]
fn analysis_seed_placement_report_is_internally_consistent() {
    let kernel = seed_single_centred_read();
    for (t, l) in [(64u64, 8u64), (128, 16), (256, 8)] {
        let report = optimize_layout(&kernel, t, l).expect("placement succeeds");
        assert!(report.layout.check_no_overlap(&kernel).is_ok());
        // One small array always fits conflict-free.
        assert!(report.conflict_free, "T={t} L={l}");
    }
}
