//! End-to-end exploration invariants across all crates.

use loopir::kernels;
use memexplore::{select, CacheDesign, DesignSpace, Evaluator, Explorer};

#[test]
fn full_sweep_produces_valid_records() {
    let kernel = kernels::compress(31);
    let space = DesignSpace::paper();
    let records = Explorer::default().explore(&kernel, &space);
    assert_eq!(records.len(), space.designs().len());
    for r in &records {
        assert!(
            (0.0..=1.0).contains(&r.miss_rate),
            "{}: {}",
            r.design,
            r.miss_rate
        );
        assert!(r.cycles >= r.trip_count as f64, "{}", r.design);
        assert!(r.energy_nj > 0.0, "{}", r.design);
        assert_eq!(r.trip_count, 4 * 961, "{}", r.design);
    }
}

#[test]
fn selections_are_consistent_with_each_other() {
    let kernel = kernels::dequant(31);
    let records = Explorer::default().explore(&kernel, &DesignSpace::small());
    let e = select::min_energy(&records).expect("non-empty");
    let t = select::min_cycles(&records).expect("non-empty");
    for r in &records {
        assert!(e.energy_nj <= r.energy_nj);
        assert!(t.cycles <= r.cycles);
    }
    // A bound at exactly the optimum is feasible and returns it.
    let bounded = select::min_energy_bounded(&records, t.cycles).expect("feasible at optimum");
    assert!(bounded.cycles <= t.cycles + 1e-9);
}

#[test]
fn pareto_frontier_is_sound_and_complete() {
    let kernel = kernels::pde(31);
    let records = Explorer::default().explore(&kernel, &DesignSpace::small());
    let frontier = select::pareto(&records);
    assert!(!frontier.is_empty());
    // No frontier point is dominated by any record.
    for f in &frontier {
        for r in &records {
            let dominates = r.cycles <= f.cycles
                && r.energy_nj <= f.energy_nj
                && (r.cycles < f.cycles || r.energy_nj < f.energy_nj);
            assert!(
                !dominates,
                "{} dominates frontier point {}",
                r.design, f.design
            );
        }
    }
    // Both extreme optima appear on the frontier.
    let e = select::min_energy(&records).expect("non-empty");
    let t = select::min_cycles(&records).expect("non-empty");
    assert!(frontier.iter().any(|f| f.energy_nj == e.energy_nj));
    assert!(frontier.iter().any(|f| f.cycles == t.cycles));
}

#[test]
fn evaluation_is_deterministic() {
    let kernel = kernels::sor(31);
    let eval = Evaluator::default();
    let d = CacheDesign::new(64, 8, 2, 4);
    let a = eval.evaluate(&kernel, d);
    let b = eval.evaluate(&kernel, d);
    assert_eq!(a.miss_rate, b.miss_rate);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.energy_nj, b.energy_nj);
}

#[test]
fn all_five_kernels_explore_the_small_space() {
    for kernel in kernels::all_paper_kernels() {
        let records = Explorer::default().explore(&kernel, &DesignSpace::small());
        assert!(!records.is_empty(), "{}", kernel.name);
        assert!(
            select::min_energy(&records).is_some(),
            "{} has no optimum",
            kernel.name
        );
    }
}

#[test]
fn natural_placement_never_beats_optimized_at_c64l8() {
    let d = CacheDesign::new(64, 8, 1, 1);
    for kernel in kernels::all_paper_kernels() {
        let opt = Evaluator::default().evaluate(&kernel, d);
        let nat = Evaluator::default().unoptimized().evaluate(&kernel, d);
        assert!(
            opt.miss_rate <= nat.miss_rate + 1e-9,
            "{}: optimized {} vs natural {}",
            kernel.name,
            opt.miss_rate,
            nat.miss_rate
        );
    }
}
