//! Shared helpers for the `memx serve` test battery: the paper kernels
//! as `.mx` sources, a tiny job-request builder, and response accessors.
//!
//! Each integration test binary compiles this module independently, so
//! not every helper is used by every test.
#![allow(dead_code)]

use memexplore::obs::{parse_json, push_json_str, Json};
use memx::serve::HttpResponse;
use memx::{http_request, Server};

/// The five kernels of the paper's evaluation, as shipped `.mx` files.
pub const PAPER_KERNELS: &[&str] = &["compress", "matmul", "pde", "sor", "dequant"];

/// Path to a shipped kernel file (`examples/kernels/<name>.mx`).
pub fn kernel_path(name: &str) -> String {
    format!(
        "{}/../../examples/kernels/{name}.mx",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// The `.mx` source of a shipped kernel.
pub fn kernel_source(name: &str) -> String {
    let path = kernel_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Builds a `POST /v1/jobs` body: `command`, inline `kernel`, plus any
/// extra pre-rendered JSON members (`",\"engine\":\"fused\""`).
pub fn job_body(command: &str, kernel_text: &str, extra: &str) -> String {
    let mut b = String::from("{\"command\":");
    push_json_str(&mut b, command);
    b.push_str(",\"kernel\":");
    push_json_str(&mut b, kernel_text);
    b.push_str(extra);
    b.push('}');
    b
}

/// Posts one job to a live server and returns the raw response.
pub fn post_job(server: &Server, body: &str) -> HttpResponse {
    let addr = server.addr().to_string();
    http_request(&addr, "POST", "/v1/jobs", body.as_bytes()).expect("daemon reachable")
}

/// The `X-Memx-Cache` disposition header (`hit`, `miss`, `join`).
pub fn cache_disposition(response: &HttpResponse) -> &str {
    response
        .headers
        .get("x-memx-cache")
        .map_or("<absent>", String::as_str)
}

/// Parses the response body as JSON.
pub fn body_json(response: &HttpResponse) -> Json {
    let text = std::str::from_utf8(&response.body).expect("response body is UTF-8");
    parse_json(text).unwrap_or_else(|e| panic!("malformed response body {text:?}: {e}"))
}

/// A required string field of the response body.
pub fn body_str<'a>(json: &'a Json, key: &str) -> &'a str {
    json.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response body lacks string field `{key}`"))
}
