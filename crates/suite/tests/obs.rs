//! Observability acceptance tests.
//!
//! Two contracts: (1) the canonical JSONL event encoding round-trips
//! bit-identically through emit → parse → re-emit for arbitrary events,
//! and (2) a [`RunReport`] rebuilt from a sweep's event log alone agrees
//! with the [`SweepTelemetry`] counters the sweep computed in-process —
//! the log is a faithful record, not a best-effort trace.

use loopir::kernels;
use memexplore::obs::{Event, EventKind, FieldValue};
use memexplore::{
    CheckpointPolicy, DesignSpace, Engine, Explorer, Obs, ObsConfig, ObsSink, RunReport,
    SweepOptions,
};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Property: emit → parse → re-emit is bit-identical
// ---------------------------------------------------------------------------

/// A lowercase identifier-ish string of 1..=8 chars.
fn arb_ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..26, 1..=8).prop_map(|ix| {
        ix.into_iter()
            .map(|i| (b'a' + i as u8) as char)
            .collect::<String>()
    })
}

/// Field keys prefixed with `x` so they never collide with the reserved
/// envelope names (`v`, `t_us`, `run`, `kind`, `phase`, `name`, `worker`).
fn arb_field_key() -> impl Strategy<Value = String> {
    arb_ident().prop_map(|s| format!("x{s}"))
}

/// Strings that stress the canonical escaping: quotes, backslashes,
/// control characters, and multi-byte unicode.
fn arb_string() -> impl Strategy<Value = String> {
    const CHARS: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '\n',
        '\r',
        '\t',
        '\u{1}',
        '\u{1f}',
        '/',
        '{',
        '}',
        ':',
        ',',
        'é',
        'λ',
        '→',
        '\u{10348}',
    ];
    proptest::collection::vec(0usize..CHARS.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| CHARS[i]).collect::<String>())
}

fn arb_field_value() -> impl Strategy<Value = FieldValue> {
    prop_oneof![
        (0u64..=u64::MAX).prop_map(FieldValue::U64),
        (i64::MIN..=i64::MAX).prop_map(FieldValue::I64),
        proptest::bool::ANY.prop_map(FieldValue::Bool),
        arb_string().prop_map(FieldValue::Str),
        // Raw number tokens: decimals survive verbatim through the parser.
        (i64::MIN..=i64::MAX, 0u32..1_000_000u32)
            .prop_map(|(i, frac)| FieldValue::Num(format!("{i}.{frac:06}"))),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    let envelope = (
        0u64..=u64::MAX,
        arb_ident(),
        prop_oneof![
            Just(EventKind::SpanBegin),
            Just(EventKind::SpanEnd),
            Just(EventKind::Point),
        ],
        arb_ident(),
        arb_ident(),
    );
    let extras = (
        prop_oneof![
            Just(None),
            (0u64..1024).prop_map(Some),
            (0u64..=u64::MAX).prop_map(Some),
        ],
        proptest::collection::vec((arb_field_key(), arb_field_value()), 0..5),
    );
    (envelope, extras).prop_map(|((t_us, run, kind, phase, name), (worker, fields))| Event {
        t_us,
        run,
        kind,
        phase,
        name,
        worker,
        fields,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn jsonl_event_round_trips_bit_identically(event in arb_event()) {
        let line = event.to_jsonl();
        let parsed = Event::parse(&line).expect("emitted line parses");
        // Byte identity of the re-emitted line is the contract; the parsed
        // value may normalize number representations (e.g. `5` -> U64).
        prop_assert_eq!(parsed.to_jsonl(), line);
    }
}

// ---------------------------------------------------------------------------
// End to end: the log reconciles with in-process telemetry
// ---------------------------------------------------------------------------

/// A `Write` sink sharing its buffer with the test.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("no poisoned writers")
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn take_text(&self) -> String {
        String::from_utf8(self.0.lock().expect("no poisoned writers").clone())
            .expect("JSONL is UTF-8")
    }
}

fn obs_into(buf: &SharedBuf) -> Arc<Obs> {
    Obs::new(ObsConfig {
        log: Some(ObsSink::Writer(Box::new(buf.clone()))),
        progress: false,
        run_id: Some("suite-test".to_string()),
    })
    .expect("in-memory obs hub")
}

#[test]
fn explore_log_reconciles_with_telemetry() {
    for engine in [Engine::Fused, Engine::PerDesign] {
        let kernel = kernels::compress(31);
        let space = DesignSpace::paper();
        let buf = SharedBuf::default();
        let obs = obs_into(&buf);
        let explorer = Explorer::default()
            .with_engine(engine)
            .with_obs(Arc::clone(&obs));
        let (records, telemetry) = explorer.explore_with_telemetry(&kernel, &space);
        obs.finish();

        let report = RunReport::from_jsonl(&buf.take_text()).expect("log parses");
        assert_eq!(report.run_id, "suite-test");
        assert_eq!(
            report.designs_done as usize, telemetry.designs_evaluated,
            "{engine:?}: log totals diverge from telemetry"
        );
        assert_eq!(report.designs_done as usize, records.len());
        assert_eq!(report.pruned, 0);
        assert_eq!(report.quarantined, 0);
        assert!(!report.cancelled);
        // Phase structure: layout, trace, simulate, select all closed.
        for phase in ["layout", "trace", "simulate", "select"] {
            assert!(
                report.phases.iter().any(|p| p.name == phase && p.spans > 0),
                "{engine:?}: phase {phase} missing from log"
            );
        }
        // Latency histograms rebuilt from the log match the sweep's own
        // counts (same per-unit events feed both).
        match engine {
            Engine::Fused => {
                assert_eq!(report.scan.count, telemetry.scan_latency.count);
                assert_eq!(report.scan.count as usize, telemetry.fused_groups);
            }
            Engine::PerDesign => {
                assert_eq!(report.sim.count, telemetry.design_latency.count);
                assert_eq!(report.sim.count as usize, telemetry.designs_evaluated);
            }
        }
        assert_eq!(report.layout.count, telemetry.layout_latency.count);
    }
}

#[test]
fn pareto_pruned_log_reconciles_with_telemetry() {
    let kernel = kernels::compress(31);
    let space = DesignSpace::paper();
    let buf = SharedBuf::default();
    let obs = obs_into(&buf);
    let explorer = Explorer::default().with_obs(Arc::clone(&obs));
    let (frontier, telemetry) = explorer.pareto_pruned(&kernel, &space);
    obs.finish();
    assert!(!frontier.is_empty());

    let report = RunReport::from_jsonl(&buf.take_text()).expect("log parses");
    assert_eq!(report.designs_done as usize, telemetry.designs_evaluated);
    assert_eq!(report.pruned as usize, telemetry.designs_pruned);
    assert!(
        report.pruned > 0,
        "the paper grid always prunes some designs"
    );
    assert!(report.phases.iter().any(|p| p.name == "bound"));
}

#[test]
fn supervised_log_reconciles_with_telemetry_and_survives_resume() {
    let dir = std::env::temp_dir().join(format!("memx-obs-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    let ckpt: PathBuf = dir.join("sweep.ckpt");

    let kernel = kernels::compress(31);
    let designs = DesignSpace::paper().designs();
    let options = SweepOptions {
        checkpoint: Some(CheckpointPolicy {
            path: ckpt.clone(),
            every: 16,
            resume: false,
        }),
        ..SweepOptions::default()
    };

    let buf = SharedBuf::default();
    let obs = obs_into(&buf);
    let explorer = Explorer::default().with_obs(Arc::clone(&obs));
    let outcome = explorer
        .explore_supervised(&kernel, &designs, &options)
        .expect("supervised sweep succeeds");
    obs.finish();

    let report = RunReport::from_jsonl(&buf.take_text()).expect("log parses");
    assert_eq!(
        report.designs_done as usize,
        outcome.telemetry.designs_evaluated
    );
    assert_eq!(
        report.flushes_written as usize,
        outcome.telemetry.checkpoints_written
    );
    assert!(report.flushes_written > 0, "checkpointing must flush");
    assert_eq!(report.flushes_failed, 0);
    assert_eq!(report.flush.count, report.flushes_written);

    // Resume from the completed checkpoint: every design arrives via the
    // resume event, and the report still reconciles.
    let resume_options = SweepOptions {
        checkpoint: Some(CheckpointPolicy {
            path: ckpt,
            every: 16,
            resume: true,
        }),
        ..SweepOptions::default()
    };
    let buf2 = SharedBuf::default();
    let obs2 = obs_into(&buf2);
    let explorer2 = Explorer::default().with_obs(Arc::clone(&obs2));
    let resumed = explorer2
        .explore_supervised(&kernel, &designs, &resume_options)
        .expect("resumed sweep succeeds");
    obs2.finish();

    let report2 = RunReport::from_jsonl(&buf2.take_text()).expect("log parses");
    assert_eq!(
        resumed.telemetry.records_resumed,
        designs.len(),
        "everything resumes from a complete checkpoint"
    );
    assert_eq!(report2.records_resumed as usize, designs.len());
    assert_eq!(report2.designs_done as usize, designs.len());

    let _ = std::fs::remove_dir_all(&dir);
}
