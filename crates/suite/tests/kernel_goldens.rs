//! Golden snapshots of the kernel library.
//!
//! Each shipped `.mx` example must parse to *exactly* the kernel its
//! `loopir::kernels` builder constructs — compared through the canonical
//! [`Kernel`] `Display` rendering, which normalizes loop-variable names
//! and subscript spelling. This pins both sides at once: a builder edit
//! that drifts from the shipped example fails here, and so does an
//! example edit that drifts from the builder.

use loopir::{kernels, parse_kernel, Kernel};
use std::fs;
use std::path::Path;

fn shipped(name: &str) -> Kernel {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/kernels")
        .join(name);
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_kernel(&text).unwrap_or_else(|e| panic!("cannot parse {name}: {e}"))
}

#[test]
fn shipped_examples_match_their_builders() {
    let pairs: Vec<(&str, Kernel)> = vec![
        ("compress.mx", kernels::compress(31)),
        ("matmul.mx", kernels::matmul(31)),
        ("pde.mx", kernels::pde(31)),
        ("sor.mx", kernels::sor(31)),
        ("dequant.mx", kernels::dequant(31)),
        ("matadd.mx", kernels::matadd(6)),
        ("conv2d.mx", kernels::conv2d(16, 3)),
        ("stencil.mx", kernels::stencil(31)),
    ];
    for (file, builder) in pairs {
        let parsed = shipped(file);
        assert_eq!(
            parsed.to_string(),
            builder.to_string(),
            "{file} no longer matches kernels::{}",
            builder.name.to_lowercase()
        );
    }
}
