//! The shard oracle: a distributed sweep (coordinator plus worker
//! *processes*, or an attached daemon) must produce stdout byte-identical
//! to the single-process `memx explore`, for paper kernels and for a
//! streamed `.din` trace.
//!
//! This is the merge contract of `memx sweep`: sharding, retries, and
//! transport are invisible in the output — a client can never tell how
//! many workers (if any) ran the sweep.

mod common;

use common::kernel_path;
use memx::{ServeConfig, Server};
use std::path::PathBuf;
use std::process::{Command, Output};

/// Locates the `memx` binary next to this test executable
/// (`target/<profile>/memx`), honouring a `MEMX_BIN` override. Falls
/// back to building it, so `cargo test -p suite` works standalone.
fn memx_bin() -> PathBuf {
    if let Ok(path) = std::env::var("MEMX_BIN") {
        return PathBuf::from(path);
    }
    let mut dir = std::env::current_exe().expect("test executable path");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join(format!("memx{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut build = Command::new(cargo);
        build.args(["build", "-p", "memx", "--bin", "memx"]);
        if dir.ends_with("release") {
            build.arg("--release");
        }
        let status = build.status().expect("cargo runs");
        assert!(status.success(), "building the memx binary failed");
    }
    assert!(bin.exists(), "memx binary not found at {}", bin.display());
    bin
}

fn memx(args: &[&str]) -> Output {
    Command::new(memx_bin())
        .args(args)
        .output()
        .expect("memx binary runs")
}

fn assert_ok(out: &Output, what: &str) {
    assert_eq!(
        out.status.code(),
        Some(0),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Self-cleaning scratch directory.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("memx-shard-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn distributed_kernel_sweep_is_byte_identical_to_explore() {
    // Two paper kernels, each swept by a coordinator with two worker
    // processes over more shards than workers (so the launch queue,
    // not just the initial dispatch, is exercised).
    for kernel in ["compress", "dequant"] {
        let path = kernel_path(kernel);
        let single = memx(&["explore", &path, "--pareto"]);
        assert_ok(&single, "single-process explore");
        let distributed = memx(&[
            "sweep",
            &path,
            "--pareto",
            "--distributed",
            "2",
            "--shards",
            "5",
            "--telemetry",
        ]);
        assert_ok(&distributed, "distributed sweep");
        assert_eq!(
            String::from_utf8_lossy(&single.stdout),
            String::from_utf8_lossy(&distributed.stdout),
            "kernel {kernel}: distributed stdout diverged from explore"
        );
        let stderr = String::from_utf8_lossy(&distributed.stderr);
        assert!(
            stderr.contains("shard    : 5 dispatched"),
            "telemetry must report shard counters: {stderr}"
        );
        assert!(
            stderr.contains("2 of 2 workers surviving"),
            "telemetry must report surviving workers: {stderr}"
        );
    }
}

#[test]
fn distributed_trace_sweep_is_byte_identical_to_explore() {
    let scratch = Scratch::new("trace");
    let din = scratch.path("compress.din");
    let traced = memx(&["trace", &kernel_path("compress")]);
    assert_ok(&traced, "trace generation");
    std::fs::write(&din, &traced.stdout).expect("tempdir is writable");

    let single = memx(&["explore", &din]);
    assert_ok(&single, "single-process trace explore");
    let distributed = memx(&["sweep", &din, "--distributed", "2"]);
    assert_ok(&distributed, "distributed trace sweep");
    assert_eq!(
        String::from_utf8_lossy(&single.stdout),
        String::from_utf8_lossy(&distributed.stdout),
        "trace: distributed stdout diverged from explore"
    );
}

#[test]
fn attached_daemon_sweep_is_byte_identical_to_explore() {
    // The coordinator can also dispatch shards to a `memx serve` daemon
    // over HTTP; here the daemon runs in-process and the coordinator is
    // the real binary, so the whole shard-job wire format is exercised.
    let server = Server::start(ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let path = kernel_path("compress");
    let single = memx(&["explore", &path]);
    assert_ok(&single, "single-process explore");
    let attached = memx(&["sweep", &path, "--attach", &addr]);
    assert_ok(&attached, "attached sweep");
    assert_eq!(
        String::from_utf8_lossy(&single.stdout),
        String::from_utf8_lossy(&attached.stdout),
        "attached stdout diverged from explore"
    );

    server.request_shutdown();
    server.join();
}

#[test]
fn zero_workers_degrades_to_local_sweep() {
    let path = kernel_path("compress");
    let single = memx(&["explore", &path]);
    assert_ok(&single, "single-process explore");
    let local = memx(&["sweep", &path, "--distributed", "0"]);
    assert_ok(&local, "local-degraded sweep");
    assert_eq!(
        String::from_utf8_lossy(&single.stdout),
        String::from_utf8_lossy(&local.stdout),
        "zero-worker sweep must be the local explore"
    );
    assert!(
        String::from_utf8_lossy(&local.stderr).contains("sweeping locally"),
        "degradation must be announced on stderr"
    );
}
