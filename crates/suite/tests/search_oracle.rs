//! The search oracle: on every paper kernel, the certified bound-guided
//! search (`Explorer::search`) at gap 0 must return an incumbent
//! *bit-identical* to the minimum extracted from an exhaustive sweep of
//! the full 425-design paper grid — for each objective.
//!
//! Bit-identical means the same `Record` down to float bit patterns and
//! the same tie-break: `select::min_energy` / `select::min_cycles` keep
//! the *first* minimum in sweep order, and the search's total order is
//! built to reproduce exactly that choice.
//!
//! The beam half of the oracle checks honesty under truncation: a beamed
//! search may miss the optimum, but it must never *claim* more than it
//! proved — its certified lower bound stays admissible (≤ the true
//! optimum) and its reported gap is at least the true distance between
//! its incumbent and the optimum.

use loopir::kernels;
use loopir::Kernel;
use memexplore::{select, DesignSpace, Explorer, Objective, SearchOptions};

fn assert_search_oracle(kernel: &Kernel) {
    let space = DesignSpace::paper();
    let explorer = Explorer::default();
    let records = explorer.explore(kernel, &space);
    assert_eq!(records.len(), space.design_count());

    let oracles = [
        (Objective::Energy, select::min_energy(&records)),
        (Objective::Cycles, select::min_cycles(&records)),
    ];
    for (objective, oracle) in oracles {
        let oracle = oracle.expect("non-empty grid has a minimum");
        let oracle_cost = objective.cost(oracle);

        // Exact search: certified gap 0, bit-identical incumbent.
        let out = explorer.search(
            kernel,
            &space,
            &SearchOptions {
                objective,
                ..Default::default()
            },
        );
        assert!(out.complete, "{}/{objective}: not certified", kernel.name);
        assert!(!out.cancelled, "{}/{objective}", kernel.name);
        assert_eq!(out.gap(), 0.0, "{}/{objective}", kernel.name);
        assert_eq!(out.candidates, records.len(), "{}/{objective}", kernel.name);
        let incumbent = out
            .incumbent
            .as_ref()
            .expect("complete search has an incumbent");
        assert_eq!(
            incumbent, oracle,
            "{}/{objective}: search incumbent diverged from the sweep minimum",
            kernel.name
        );
        // The energy bounds must prune *something* — otherwise they are
        // vacuous and this is just a slow exhaustive sweep. (Cycles bounds
        // come from the untiled trace's miss floor and can be too loose to
        // prune on tiling-dominated kernels like MatMult.)
        if matches!(objective, Objective::Energy) {
            assert!(
                out.telemetry.designs_evaluated < records.len(),
                "{}/{objective}: no pruning ({} of {} simulated)",
                kernel.name,
                out.telemetry.designs_evaluated,
                records.len()
            );
        }

        // Beamed searches: possibly suboptimal, never dishonest.
        for beam in [Some(1), Some(4), Some(16), None] {
            let out = explorer.search(
                kernel,
                &space,
                &SearchOptions {
                    objective,
                    beam,
                    ..Default::default()
                },
            );
            let inc_cost = out.incumbent_cost();
            assert!(
                inc_cost >= oracle_cost,
                "{}/{objective}/beam {beam:?}: incumbent {inc_cost} beats the oracle {oracle_cost}",
                kernel.name
            );
            assert!(
                out.lower_bound <= oracle_cost,
                "{}/{objective}/beam {beam:?}: bound {} is not admissible (optimum {oracle_cost})",
                kernel.name,
                out.lower_bound
            );
            // Reported gap covers the true gap to the optimum.
            let true_gap = inc_cost - oracle_cost;
            assert!(
                out.gap() >= true_gap - 1e-9,
                "{}/{objective}/beam {beam:?}: reported gap {} below true gap {true_gap}",
                kernel.name,
                out.gap()
            );
            // An unbounded beam is the exact search again.
            if beam.is_none() {
                assert!(out.complete, "{}/{objective}: unbounded beam", kernel.name);
                assert_eq!(out.incumbent.as_ref().expect("incumbent"), oracle);
            }
        }
    }

    // The weighted objective agrees with a direct scan of the sweep.
    let objective = Objective::Weighted {
        energy_weight: 1.0,
        cycles_weight: 0.5,
    };
    let oracle_cost = records
        .iter()
        .map(|r| objective.cost(r))
        .fold(f64::INFINITY, f64::min);
    let out = explorer.search(
        kernel,
        &space,
        &SearchOptions {
            objective,
            ..Default::default()
        },
    );
    assert!(out.complete, "{}/weighted", kernel.name);
    assert_eq!(
        out.incumbent_cost(),
        oracle_cost,
        "{}/weighted",
        kernel.name
    );
}

#[test]
fn search_matches_exhaustive_minimum_on_compress() {
    assert_search_oracle(&kernels::compress(31));
}

#[test]
fn search_matches_exhaustive_minimum_on_matmul() {
    assert_search_oracle(&kernels::matmul(31));
}

#[test]
fn search_matches_exhaustive_minimum_on_pde() {
    assert_search_oracle(&kernels::pde(31));
}

#[test]
fn search_matches_exhaustive_minimum_on_sor() {
    assert_search_oracle(&kernels::sor(31));
}

#[test]
fn search_matches_exhaustive_minimum_on_dequant() {
    assert_search_oracle(&kernels::dequant(31));
}
