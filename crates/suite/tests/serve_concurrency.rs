//! Concurrency battery for `memx serve`: single-flight deduplication
//! (N identical submissions simulate exactly once — asserted through the
//! observability counters, not just the cache stats), and graceful
//! termination of mixed jobs under a tight deadline (every response is a
//! well-formed complete-or-cancelled body with a typed status).

mod common;

use common::{body_json, body_str, cache_disposition, job_body, kernel_source, post_job};
use memexplore::obs::{Obs, ObsConfig, ObsSink, RunReport};
use memx::{ServeConfig, Server};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Self-cleaning unique temp path for the JSONL event log.
struct TempLog {
    path: PathBuf,
}

impl TempLog {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        TempLog {
            path: std::env::temp_dir()
                .join(format!("memx-serve-conc-{}-{n}.jsonl", std::process::id())),
        }
    }
}

impl Drop for TempLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[test]
fn identical_concurrent_jobs_simulate_exactly_once() {
    const CLIENTS: usize = 8;
    let log = TempLog::new();
    let obs = Obs::new(ObsConfig {
        log: Some(ObsSink::Path(log.path.clone())),
        progress: false,
        run_id: None,
    })
    .expect("temp log is writable");
    let server = Server::start(ServeConfig {
        obs: Some(obs),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");

    let body = job_body("explore", &kernel_source("compress"), "");
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(|| post_job(&server, &body)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every client gets the complete result, byte-identical across all.
    for r in &responses {
        assert_eq!(r.code, 200);
        assert_eq!(body_str(&body_json(r), "status"), "complete");
        assert_eq!(r.body, responses[0].body, "response bodies diverged");
    }
    // Exactly one simulation: one miss (the leader), everyone else a hit
    // or an in-flight join. On a single-core box the leader often
    // finishes before later clients connect, so the hit/join split is
    // load-dependent — the miss count is not.
    let stats = server.cache().stats();
    assert_eq!(stats.misses, 1, "single-flight broke: {stats:?}");
    assert_eq!(
        stats.hits + stats.joins,
        (CLIENTS - 1) as u64,
        "every non-leader must be served from the flight or the cache: {stats:?}"
    );

    // The same invariant must be visible through the observability layer
    // (this is what `memx report` renders for operators).
    server.request_shutdown();
    server.join();
    let text = std::fs::read_to_string(&log.path).expect("event log exists");
    let report = RunReport::from_jsonl(&text).expect("valid JSONL");
    assert_eq!(report.jobs_done, CLIENTS as u64, "{report}");
    assert_eq!(report.jobs_cancelled, 0, "{report}");
    assert_eq!(report.cache_misses, 1, "{report}");
    assert_eq!(report.cache_hits + report.cache_joins, (CLIENTS - 1) as u64);
}

#[test]
fn mixed_jobs_under_tight_deadline_terminate_well_formed() {
    let server = Server::start(ServeConfig::default()).expect("bind ephemeral port");

    // Distinct jobs across kernels and kinds. MatMult's 31^3 nest cannot
    // finish a debug sweep in 50 ms, so at least one job cancels; the
    // cheap search jobs may complete. Either way every response must be
    // a typed, well-formed body.
    let jobs: Vec<String> = vec![
        job_body(
            "explore",
            &kernel_source("matmul"),
            ",\"deadline_secs\":0.05",
        ),
        job_body(
            "pareto",
            &kernel_source("matmul"),
            ",\"deadline_secs\":0.05",
        ),
        job_body(
            "search",
            &kernel_source("compress"),
            ",\"deadline_secs\":30",
        ),
        job_body(
            "search",
            &kernel_source("dequant"),
            ",\"deadline_secs\":0.05",
        ),
    ];
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|b| scope.spawn(|| post_job(&server, b)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut cancelled = 0;
    for (r, body) in responses.iter().zip(&jobs) {
        assert_eq!(r.code, 200, "job {body} failed");
        let json = body_json(r);
        let status = body_str(&json, "status");
        assert!(
            status == "complete" || status == "cancelled",
            "job {body}: unexpected status {status}"
        );
        // The typed header mirrors the body's status field.
        assert_eq!(
            r.headers.get("x-memx-status").map(String::as_str),
            Some(status)
        );
        if status == "cancelled" {
            cancelled += 1;
            // Partial results are answered but never cached: the same
            // request must re-simulate.
            let again = post_job(&server, body);
            assert_eq!(
                cache_disposition(&again),
                "miss",
                "cancelled job was cached"
            );
        }
    }
    assert!(
        cancelled >= 1,
        "the matmul sweep should have hit its 50 ms deadline"
    );

    // The long-deadline search completed and IS cached.
    let warm = post_job(&server, &jobs[2]);
    assert_eq!(cache_disposition(&warm), "hit");
    server.request_shutdown();
    server.join();
}

#[test]
fn shutdown_under_load_drains_every_accepted_job() {
    // The graceful-drain contract behind SIGTERM (the signal handler
    // calls the same `request_shutdown`): a shutdown that lands while
    // jobs are in flight must not drop any of them — every accepted job
    // runs to a well-formed complete-or-cancelled response, and the
    // accounting in the event log balances exactly.
    let log = TempLog::new();
    let obs = Obs::new(ObsConfig {
        log: Some(ObsSink::Path(log.path.clone())),
        progress: false,
        run_id: None,
    })
    .expect("temp log is writable");
    let server = Server::start(ServeConfig {
        obs: Some(obs),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Distinct jobs so none dedupe into each other: two full sweeps, a
    // search, and one sweep on a 50 ms fuse (guaranteed to cancel — that
    // path must drain cleanly too).
    let jobs: Vec<String> = vec![
        job_body("explore", &kernel_source("compress"), ""),
        job_body("explore", &kernel_source("dequant"), ""),
        job_body("search", &kernel_source("sor"), ""),
        job_body(
            "explore",
            &kernel_source("matmul"),
            ",\"deadline_secs\":0.05",
        ),
    ];
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|b| scope.spawn(|| post_job(&server, b)))
            .collect();
        // Let the clients connect and the jobs start, then yank the rug
        // mid-flight.
        std::thread::sleep(std::time::Duration::from_millis(60));
        server.request_shutdown();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut done = 0u64;
    let mut cancelled = 0u64;
    for (r, body) in responses.iter().zip(&jobs) {
        assert_eq!(r.code, 200, "job {body} was dropped by the drain");
        let json = body_json(r);
        match body_str(&json, "status") {
            "complete" => done += 1,
            "cancelled" => cancelled += 1,
            other => panic!("job {body}: unexpected status {other}"),
        }
    }
    assert_eq!(done + cancelled, jobs.len() as u64);
    assert!(cancelled >= 1, "the 50 ms matmul job should have cancelled");

    // The accept loop has exited: new connections are refused, so the
    // drain really was a drain and not a still-open door.
    server.join();
    assert!(
        std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(500)).is_err(),
        "server still accepting after drain"
    );

    // The event log balances: every accepted job is accounted done or
    // cancelled, nothing vanished.
    let text = std::fs::read_to_string(&log.path).expect("event log exists");
    let report = RunReport::from_jsonl(&text).expect("valid JSONL");
    assert_eq!(report.jobs_done, done + cancelled, "{report}");
    assert_eq!(report.jobs_cancelled, cancelled, "{report}");
}
