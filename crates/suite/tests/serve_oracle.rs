//! The serve oracle: for every paper kernel and every job kind, the
//! daemon's response must be byte-identical between a cold miss and a
//! cache hit, its `stdout` field must be byte-identical to the offline
//! `memx` command's stdout, and an eviction followed by a re-query must
//! re-simulate and still produce the same bytes.
//!
//! This is the end-to-end correctness contract of the result cache: a
//! client can never tell (from the body) whether its job was simulated
//! or served from memory, and the daemon can never drift from the CLI.

mod common;

use common::{
    body_json, body_str, cache_disposition, job_body, kernel_path, kernel_source, post_job,
    PAPER_KERNELS,
};
use memexplore::CacheKey;
use memx::cli::{ObsFlags, Supervise};
use memx::{run, Command, ServeConfig, Server};

/// The offline command equivalent to a default serve job of `kind`.
fn offline_command(kind: &str, file: String) -> Command {
    match kind {
        "explore" => Command::Explore {
            file,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            analytical: false,
            bound_cycles: None,
            bound_energy: None,
            pareto: false,
            telemetry: false,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        },
        "pareto" => Command::Pareto {
            file,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            format: "csv".into(),
            exhaustive: false,
            telemetry: false,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        },
        "search" => Command::Search {
            file,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            objective: memexplore::Objective::Energy,
            space: "paper".into(),
            beam: None,
            gap: 0.0,
            deadline_secs: None,
            format: "text".into(),
            telemetry: false,
            no_analytic: false,
            obs: ObsFlags::default(),
        },
        other => panic!("unknown job kind {other}"),
    }
}

#[test]
fn hit_miss_offline_and_eviction_agree_on_every_paper_kernel() {
    let server = Server::start(ServeConfig::default()).expect("bind ephemeral port");
    for name in PAPER_KERNELS {
        let source = kernel_source(name);
        for kind in ["explore", "pareto", "search"] {
            let body = job_body(kind, &source, "");

            // Cold miss: the job simulates.
            let first = post_job(&server, &body);
            assert_eq!(first.code, 200, "{name}/{kind}");
            assert_eq!(cache_disposition(&first), "miss", "{name}/{kind}");

            // Warm hit: byte-identical body, no simulation.
            let second = post_job(&server, &body);
            assert_eq!(second.code, 200, "{name}/{kind}");
            assert_eq!(cache_disposition(&second), "hit", "{name}/{kind}");
            assert_eq!(
                first.body, second.body,
                "{name}/{kind}: hit bytes differ from miss bytes"
            );

            // The response stdout is byte-identical to the offline CLI.
            let json = body_json(&first);
            assert_eq!(body_str(&json, "status"), "complete", "{name}/{kind}");
            let offline = run(offline_command(kind, kernel_path(name)))
                .unwrap_or_else(|e| panic!("{name}/{kind} offline run failed: {e}"));
            assert_eq!(
                body_str(&json, "stdout"),
                offline.stdout,
                "{name}/{kind}: daemon stdout diverged from offline memx"
            );

            // Evict, re-query: re-simulates (miss) to the same bytes.
            let key_hex = body_str(&json, "key");
            let key = CacheKey(u128::from_str_radix(key_hex, 16).expect("hex key"));
            assert!(
                server.cache().evict(key),
                "{name}/{kind}: key {key_hex} was not resident"
            );
            let third = post_job(&server, &body);
            assert_eq!(cache_disposition(&third), "miss", "{name}/{kind}");
            assert_eq!(
                first.body, third.body,
                "{name}/{kind}: re-simulated bytes differ"
            );
        }
    }
    // 5 kernels x 3 kinds, each simulated twice (cold + after eviction).
    assert_eq!(server.jobs_done(), 45);
    server.request_shutdown();
    server.join();
}

#[test]
fn health_stats_and_error_paths_are_typed() {
    let server = Server::start(ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let get = |path: &str| memx::http_request(&addr, "GET", path, b"").expect("reachable");

    let health = get("/v1/health");
    assert_eq!(health.code, 200);
    assert!(health.body.starts_with(b"{\"status\":\"ok\""));

    let stats = get("/v1/stats");
    assert_eq!(stats.code, 200);
    let json = body_json(&stats);
    assert!(json.get("cache").is_some(), "stats must expose the cache");

    // Typed rejections: malformed JSON, unknown field, bad kernel,
    // unknown endpoint, wrong method.
    let post = |path: &str, body: &str| {
        memx::http_request(&addr, "POST", path, body.as_bytes()).expect("reachable")
    };
    assert_eq!(post("/v1/jobs", "{not json").code, 400);
    let source = kernel_source("compress");
    assert_eq!(
        post("/v1/jobs", &job_body("explore", &source, ",\"turbo\":1")).code,
        400
    );
    assert_eq!(
        post("/v1/jobs", &job_body("explore", "not a kernel", "")).code,
        400
    );
    assert_eq!(post("/v1/nope", "{}").code, 404);
    assert_eq!(get("/v1/jobs").code, 405);

    // Errors never enter the cache: a subsequent valid job still misses.
    let ok = post_job(&server, &job_body("search", &source, ""));
    assert_eq!(ok.code, 200);
    assert_eq!(cache_disposition(&ok), "miss");
    server.request_shutdown();
    server.join();
}
