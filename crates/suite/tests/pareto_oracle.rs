//! The pruning oracle: on every paper kernel, the branch-and-bound Pareto
//! engine must return a frontier *bit-identical* to the one extracted
//! from an exhaustive sweep of the full paper grid.
//!
//! This is the correctness backbone of the admissible pruner
//! (`memexplore::pareto`): the bounds may only ever skip designs whose
//! true record is strictly dominated by an already-simulated one, so the
//! two engines must agree exactly — including float bit patterns, since
//! `Record` equality is bitwise. One test per kernel so a divergence
//! names the kernel that produced it.

use loopir::kernels;
use loopir::Kernel;
use memexplore::{DesignSpace, Explorer};

fn assert_oracle(kernel: &Kernel) {
    let space = DesignSpace::paper();
    let explorer = Explorer::default();
    let (exhaustive, _) = explorer.pareto_exhaustive(kernel, &space);
    let (pruned, telemetry) = explorer.pareto_pruned(kernel, &space);

    assert_eq!(
        exhaustive, pruned,
        "{}: pruned frontier diverged from exhaustive",
        kernel.name
    );
    // Every design was either simulated or provably dominated — none lost.
    assert_eq!(
        telemetry.designs_considered(),
        space.designs().len(),
        "{}: simulated + pruned must cover the whole space",
        kernel.name
    );
    assert_eq!(telemetry.frontier_size, pruned.len(), "{}", kernel.name);
    assert!(
        !pruned.is_empty(),
        "{}: a non-empty space has a non-empty frontier",
        kernel.name
    );
}

#[test]
fn pruned_frontier_matches_exhaustive_on_compress() {
    assert_oracle(&kernels::compress(31));
}

#[test]
fn pruned_frontier_matches_exhaustive_on_matmul() {
    assert_oracle(&kernels::matmul(31));
}

#[test]
fn pruned_frontier_matches_exhaustive_on_pde() {
    assert_oracle(&kernels::pde(31));
}

#[test]
fn pruned_frontier_matches_exhaustive_on_sor() {
    assert_oracle(&kernels::sor(31));
}

#[test]
fn pruned_frontier_matches_exhaustive_on_dequant() {
    assert_oracle(&kernels::dequant(31));
}
