//! The fused-replay oracle: on every paper kernel, the fused one-pass
//! engine must produce records *bit-identical* to the per-design engine
//! over the full paper grid — for both the exhaustive explore sweep and
//! the pruned Pareto search.
//!
//! This is the acceptance gate of the trace-group refactor
//! (`memsim::ReplayBank` + `memexplore::Engine::Fused`): banking designs
//! that replay the same trace slice is a pure scheduling change, so every
//! counter, cycle count, and energy figure must agree exactly — float bit
//! patterns included, since `Record` equality is bitwise. One test per
//! kernel so a divergence names the kernel that produced it.

use loopir::kernels;
use loopir::Kernel;
use memexplore::{DesignSpace, Engine, Explorer};

fn assert_fused_oracle(kernel: &Kernel) {
    let space = DesignSpace::paper();
    let fused = Explorer::default().with_engine(Engine::Fused);
    let per_design = Explorer::default().with_engine(Engine::PerDesign);

    // Exhaustive sweep: same records, in the same deterministic order.
    let (fr, ft) = fused.explore_with_telemetry(kernel, &space);
    let (pr, pt) = per_design.explore_with_telemetry(kernel, &space);
    assert_eq!(
        fr, pr,
        "{}: fused explore records diverged from per-design",
        kernel.name
    );
    assert_eq!(fr.len(), space.designs().len(), "{}", kernel.name);

    // Both engines do the same logical work; the fused one scans less.
    assert_eq!(
        ft.trace_events_replayed, pt.trace_events_replayed,
        "{}: logical replay counts must agree",
        kernel.name
    );
    assert!(
        ft.fused_groups > 0 && ft.trace_events_scanned < ft.trace_events_replayed,
        "{}: fused engine should bank designs ({} groups, {} scanned vs {} replayed)",
        kernel.name,
        ft.fused_groups,
        ft.trace_events_scanned,
        ft.trace_events_replayed
    );

    // Pruned Pareto search: same frontier, same prune decisions.
    let (ff, fft) = fused.pareto_pruned(kernel, &space);
    let (pf, pft) = per_design.pareto_pruned(kernel, &space);
    assert_eq!(
        ff, pf,
        "{}: fused pruned frontier diverged from per-design",
        kernel.name
    );
    assert_eq!(
        fft.designs_pruned, pft.designs_pruned,
        "{}: banking must not change the prune set",
        kernel.name
    );
    assert_eq!(
        fft.designs_evaluated, pft.designs_evaluated,
        "{}",
        kernel.name
    );
}

#[test]
fn fused_matches_per_design_on_compress() {
    assert_fused_oracle(&kernels::compress(31));
}

#[test]
fn fused_matches_per_design_on_matmul() {
    assert_fused_oracle(&kernels::matmul(31));
}

#[test]
fn fused_matches_per_design_on_pde() {
    assert_fused_oracle(&kernels::pde(31));
}

#[test]
fn fused_matches_per_design_on_sor() {
    assert_fused_oracle(&kernels::sor(31));
}

#[test]
fn fused_matches_per_design_on_dequant() {
    assert_fused_oracle(&kernels::dequant(31));
}
