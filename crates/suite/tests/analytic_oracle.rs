//! Differential oracle for the analytic fast path.
//!
//! The fused engine may resolve a whole trace group in closed form
//! (`memexplore::analytic::try_group_records`, built on
//! `analysis::exact`) instead of replaying it. That is only sound if the
//! closed form is *bit-identical* to simulation, so two layers pin it:
//!
//! 1. **End to end**: on seven kernels (the paper's five plus the stencil
//!    and conv2d extras), `Explorer` records with the fast path enabled
//!    must equal plain replay and the per-design engine — on the paper
//!    grid (where the capacity gate keeps the fast path dormant) and on
//!    an ample grid sized to actually trigger it.
//! 2. **Unit**: any report the classifier approves as analytic-exact must
//!    reproduce the naive `memsim::reference` model's counters exactly,
//!    over random read traces and random geometries.

use analysis::exact::{exact_report, profile_read_class};
use loopir::{kernels, Kernel};
use memexplore::{DesignSpace, Engine, Explorer};
use memsim::reference::ReferenceCache;
use memsim::{BusEncoding, CacheConfig, TraceEvent};
use proptest::prelude::*;

/// The paper's five evaluation kernels plus the two library extras.
fn seven_kernels() -> Vec<Kernel> {
    let mut v = kernels::all_paper_kernels();
    v.push(kernels::stencil(31));
    v.push(kernels::conv2d(16, 3));
    v
}

/// A grid whose every cache holds the kernel's whole array footprint, so
/// the capacity gate admits each trace group to classification.
fn ample_space(kernel: &Kernel) -> DesignSpace {
    let footprint: u64 = memexplore::analytic::kernel_footprint_bytes(kernel);
    let base = usize::try_from(footprint.next_power_of_two()).expect("small kernels");
    DesignSpace {
        cache_sizes: vec![base, base * 2],
        line_sizes: vec![8, 16],
        assocs: vec![1, 2],
        tilings: vec![1],
        min_lines: 1,
        ..Default::default()
    }
}

fn assert_analytic_oracle(kernel: &Kernel, space: &DesignSpace, expect_analytic: bool) {
    let analytic = Explorer::default().with_engine(Engine::Fused);
    let replayed = Explorer::default()
        .with_engine(Engine::Fused)
        .with_analytic(false);
    let per_design = Explorer::default().with_engine(Engine::PerDesign);

    let (ar, at) = analytic.explore_with_telemetry(kernel, space);
    let (rr, rt) = replayed.explore_with_telemetry(kernel, space);
    let (pr, _) = per_design.explore_with_telemetry(kernel, space);

    assert_eq!(
        ar, rr,
        "{}: analytic records diverged from fused replay",
        kernel.name
    );
    assert_eq!(
        ar, pr,
        "{}: analytic records diverged from per-design replay",
        kernel.name
    );
    assert_eq!(
        at.analytic_groups + at.simulated_groups,
        at.fused_groups,
        "{}: every fused group is either analytic or simulated",
        kernel.name
    );
    assert_eq!(
        rt.analytic_groups, 0,
        "{}: --no-analytic must never classify",
        kernel.name
    );
    if expect_analytic {
        assert!(
            at.analytic_groups > 0,
            "{}: ample grid should trigger the fast path ({} groups, all simulated)",
            kernel.name,
            at.fused_groups
        );
    } else {
        // The paper grid's caches sit far below every kernel footprint,
        // so the capacity gate must keep the fast path dormant there.
        assert_eq!(
            at.analytic_groups, 0,
            "{}: paper grid should never classify",
            kernel.name
        );
    }
}

#[test]
fn analytic_matches_simulation_on_the_paper_grid() {
    let space = DesignSpace::paper();
    for kernel in seven_kernels() {
        assert_analytic_oracle(&kernel, &space, false);
    }
}

#[test]
fn analytic_fast_path_fires_and_matches_on_ample_grids() {
    for kernel in seven_kernels() {
        assert_analytic_oracle(&kernel, &ample_space(&kernel), true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any (trace, geometry) the classifier approves must reproduce the
    /// naive reference model's counters exactly. Rejections are fine —
    /// they just mean the design simulates — but an approval is a claim
    /// of bit-identity, checked here against an implementation that
    /// shares no code with either the classifier or the replay engine.
    #[test]
    fn approved_classifications_match_the_reference_model(
        accesses in proptest::collection::vec((0u64..4096, 1u32..9), 1..200),
        line_pow in 2u32..7,   // 4..=64 B lines
        cache_pow in 6u32..13, // 64..=4096 B caches
        assoc_pow in 0u32..3,  // 1, 2, 4 ways
    ) {
        let line = 1usize << line_pow;
        let cache = 1usize << cache_pow;
        let assoc = 1usize << assoc_pow;
        prop_assume!(line <= cache && assoc <= cache / line);
        let events: Vec<TraceEvent> = accesses
            .iter()
            .map(|&(addr, size)| TraceEvent::read(addr, size))
            .collect();
        let profile = profile_read_class(&events, line, BusEncoding::Gray)
            .expect("read-only traces always profile");
        let config = CacheConfig::new(cache, line, assoc).expect("powers of two");
        if let Some(report) = exact_report(&profile, config) {
            let stats = ReferenceCache::simulate(config, events.iter().copied());
            prop_assert_eq!(report.stats, stats);
        }
    }
}
