//! Differential harness: the analytical miss-rate model vs the
//! trace-driven simulator, for every kernel in `loopir::kernels`.
//!
//! Three layers of checks over `DesignSpace::small()` sweeps run by the
//! trace-once engine:
//!
//! 1. **conservation** — for every design, hit + miss counts equal the
//!    materialized trace length exactly (nothing is dropped, duplicated,
//!    or split by the arena replay path);
//! 2. **lower bound** — the analytical model counts compulsory (spatial)
//!    misses only, so for *single-pass* kernels — whose only reuse is the
//!    spatial reuse the model already counts — the simulated miss rate
//!    may not undercut it by more than `LOWER_BOUND_TOL` at any design
//!    point. Kernels with cross-iteration temporal reuse (matmul, FIR,
//!    conv2d, matvec, transpose) legitimately beat the model and are
//!    excluded from this bound;
//! 3. **convergence** — at ample capacity (`C1024`, where the paper's
//!    conflict-free placement holds the whole reuse window) the model is
//!    an upper bound within `AMPLE_TOL` for every kernel, and a
//!    two-sided match within `AMPLE_TOL` for the single-pass kernels.

use loopir::transform::tile_all;
use loopir::{kernels, Kernel};
use memexplore::metrics::read_trace;
use memexplore::{CacheDesign, DesignSpace, Evaluator, Explorer};
use memsim::Simulator;

/// The simulated miss rate may exceed the compulsory-only analytical
/// estimate freely (capacity/conflict misses), but for single-pass
/// kernels it may undercut it only by edge effects of the closed forms.
const LOWER_BOUND_TOL: f64 = 0.02;

/// Agreement required at ample capacity (measured headroom: the largest
/// observed deviation for single-pass kernels is PDE at +0.035).
const AMPLE_TOL: f64 = 0.05;

/// Kernels whose only data reuse is the spatial reuse the analytical
/// model counts — one pass over each array, stencil or streaming access.
fn single_pass_kernels() -> Vec<Kernel> {
    vec![
        kernels::compress(15),
        kernels::pde(15),
        kernels::sor(15),
        kernels::dequant(15),
        kernels::matadd(15),
        kernels::stencil(15),
    ]
}

/// Every kernel constructor in `loopir::kernels`, at sizes small enough
/// to sweep exhaustively.
fn every_kernel() -> Vec<Kernel> {
    let mut ks = single_pass_kernels();
    ks.extend([
        kernels::matmul(8),
        kernels::transpose(15),
        kernels::fir(64, 8),
        kernels::conv2d(15, 3),
        kernels::matvec(15),
    ]);
    ks
}

#[test]
fn sweep_counts_conserve_trace_length() {
    let evaluator = Evaluator::default();
    let explorer = Explorer::new(evaluator.clone());
    let space = DesignSpace::small();
    let designs = space.designs();
    for kernel in every_kernel() {
        let records = explorer.explore_designs(&kernel, &designs);
        assert_eq!(records.len(), designs.len());
        for (record, &design) in records.iter().zip(&designs) {
            // Regenerate the trace independently of the arena.
            let (layout, _) = evaluator.layout_for(&kernel, design.cache_size, design.line);
            let tiled = tile_all(&kernel, design.tiling);
            let trace = read_trace(&tiled, &layout);
            let config = design.cache_config().expect("small() designs are valid");
            let report = Simulator::simulate_slice(config, &trace);
            let hits = report.stats.read_hits;
            let misses = report.stats.read_misses();
            assert_eq!(
                hits + misses,
                trace.len() as u64,
                "{}: hits + misses != trace length at {design}",
                kernel.name
            );
            assert_eq!(
                record.trip_count,
                hits + misses,
                "{}: sweep record trip count diverged at {design}",
                kernel.name
            );
            let miss_rate = misses as f64 / (hits + misses) as f64;
            assert!(
                (record.miss_rate - miss_rate).abs() < 1e-12,
                "{}: sweep miss rate {} vs replayed {} at {design}",
                kernel.name,
                record.miss_rate,
                miss_rate
            );
        }
    }
}

#[test]
fn analytical_model_is_a_lower_bound_for_single_pass_kernels() {
    let evaluator = Evaluator::default();
    let explorer = Explorer::new(evaluator.clone());
    let space = DesignSpace::small();
    let designs = space.designs();
    for kernel in single_pass_kernels() {
        let records = explorer.explore_designs(&kernel, &designs);
        for (record, &design) in records.iter().zip(&designs) {
            let ana = evaluator.evaluate_analytical(&kernel, design).miss_rate;
            assert!(
                record.miss_rate >= ana - LOWER_BOUND_TOL,
                "{}: simulated {} undercut analytical {} at {design}",
                kernel.name,
                record.miss_rate,
                ana
            );
        }
    }
}

#[test]
fn analytical_model_is_an_upper_bound_at_ample_capacity() {
    // A real cache with ample capacity exploits every form of locality
    // the model counts plus temporal reuse the model ignores, so the
    // model can only overestimate (within edge effects).
    let evaluator = Evaluator::default();
    for kernel in every_kernel() {
        for line in [8usize, 16] {
            let design = CacheDesign::new(1024, line, 1, 1);
            let sim = evaluator.evaluate(&kernel, design).miss_rate;
            let ana = evaluator.evaluate_analytical(&kernel, design).miss_rate;
            assert!(
                sim <= ana + AMPLE_TOL,
                "{}: simulated {sim} exceeds analytical {ana} at {design}",
                kernel.name
            );
        }
    }
}

#[test]
fn analytical_model_converges_for_single_pass_kernels() {
    let evaluator = Evaluator::default();
    for kernel in single_pass_kernels() {
        for line in [8usize, 16] {
            let design = CacheDesign::new(1024, line, 1, 1);
            let sim = evaluator.evaluate(&kernel, design).miss_rate;
            let ana = evaluator.evaluate_analytical(&kernel, design).miss_rate;
            assert!(
                (sim - ana).abs() <= AMPLE_TOL,
                "{}: simulated {sim} vs analytical {ana} at {design}",
                kernel.name
            );
        }
    }
}
