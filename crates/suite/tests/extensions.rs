//! Integration tests for the beyond-the-paper extensions: scratchpad
//! partitioning, two-level hierarchies, and the I-cache budget split.

use icache::explore::best_joint_split;
use icache::stream::InstructionStream;
use loopir::kernels;
use memexplore::hierarchy::{evaluate_two_level, explore_two_level, TwoLevelSpace};
use memexplore::spm::{best_split, choose_arrays, evaluate_split, explore_split};
use memexplore::{CacheDesign, Evaluator};
use memsim::CacheConfig;

#[test]
fn spm_beats_cache_only_for_fir_coefficients() {
    // The textbook scratchpad case: a 64 B coefficient table read every
    // iteration. Diverting it must reduce both cycles and energy.
    let kernel = kernels::fir(256, 16);
    let eval = Evaluator::default();
    let records = explore_split(&kernel, 4096, &eval);
    let zero = records
        .iter()
        .find(|r| r.spm_bytes == 0)
        .expect("sweep includes the no-SPM point");
    let best = best_split(&records).expect("non-empty sweep");
    assert!(best.spm_bytes > 0, "some scratchpad must win for FIR");
    assert!(best.energy_nj < zero.energy_nj);
    assert!(best.cycles < zero.cycles);
    // The winning assignment holds the coefficient array.
    let names: Vec<&str> = best
        .assignment
        .arrays
        .iter()
        .map(|&a| kernel.array(a).name.as_str())
        .collect();
    assert!(names.contains(&"h"), "{names:?}");
}

#[test]
fn spm_oversizing_wastes_energy() {
    // Once the profitable arrays fit, a bigger SPM only raises the
    // per-access cell energy.
    let kernel = kernels::fir(256, 16);
    let eval = Evaluator::default();
    let d = CacheDesign::new(128, 16, 1, 1);
    let right = evaluate_split(&kernel, 64, d, &eval);
    let oversized = evaluate_split(&kernel, 1024, d, &eval);
    assert_eq!(
        right.assignment.diverted_reads,
        oversized.assignment.diverted_reads
    );
    assert!(right.energy_nj < oversized.energy_nj);
}

#[test]
fn spm_assignment_is_stable_and_exact() {
    let kernel = kernels::dequant(31);
    // qtable is 31*31*4 = 3844 B; only a 4 KiB SPM can take it.
    let small = choose_arrays(&kernel, 1024);
    assert!(small.arrays.is_empty());
    let large = choose_arrays(&kernel, 8192);
    assert!(!large.arrays.is_empty());
    assert!(large.diverted_reads > 0);
}

#[test]
fn hierarchy_sweep_finds_an_l2_that_absorbs_matmul() {
    let kernel = kernels::matmul(16);
    let records = explore_two_level(&kernel, &TwoLevelSpace::small(), &Evaluator::default());
    assert!(
        records.iter().any(|r| r.global_miss_rate() < 0.05),
        "some L2 should absorb the 3 KB working set"
    );
    // Per-level accounting is exact for every record.
    for r in &records {
        assert_eq!(
            r.report.l1.read_hits + r.report.l2.read_hits + r.report.l2.read_misses(),
            r.report.l1.reads
        );
    }
}

#[test]
fn hierarchy_l2_always_wins_cycles() {
    let kernel = kernels::compress(31);
    let eval = Evaluator::default();
    let l1 = CacheConfig::new(64, 8, 1).expect("valid geometry");
    let l2 = CacheConfig::new(2048, 32, 4).expect("valid geometry");
    let two = evaluate_two_level(&kernel, l1, l2, &eval);
    let one = eval.evaluate(&kernel, CacheDesign::new(64, 8, 1, 1));
    assert!(two.cycles < one.cycles);
}

#[test]
fn icache_joint_split_composes_with_the_mpeg_kernels() {
    // Every MPEG kernel gets a sensible joint split: tiny code footprints
    // mean the I-share never exceeds 256 B.
    for (kernel, _) in mpeg::decoder().components.iter().take(3) {
        let stream = InstructionStream::for_kernel(kernel, 0x8000);
        let best = best_joint_split(kernel, &stream, 512).expect("some split works");
        let (i_share, _) = best.split();
        assert!(
            i_share as u64 >= stream.footprint_bytes().next_power_of_two() / 2,
            "{}: I-cache {} too small for {} B of code",
            kernel.name,
            i_share,
            stream.footprint_bytes()
        );
        assert!(best.instruction.miss_rate < 0.05, "{}", kernel.name);
    }
}
