//! Property-based tests of the certified bound-guided search
//! (`Explorer::search`) on randomly generated kernels and design grids.
//!
//! Three laws, each checked against the exhaustive sweep of the same
//! grid:
//!
//! 1. **Certification** — the reported gap is never negative, the lower
//!    bound never exceeds the true optimum (admissibility), and a gap-0
//!    complete run returns the sweep minimum bit-identically.
//! 2. **Anytime monotonicity** — replaying the JSONL observability log,
//!    the `incumbent` events carry a non-increasing cost sequence (each
//!    incumbent improves on the last).
//! 3. **Deadline well-formedness** — a deadline-cancelled run still
//!    reports a grid-consistent partial result: the incumbent (when any)
//!    is the bit-exact record of its claimed sweep index.

use loopir::{AffineExpr, ArrayDecl, ArrayId, ArrayRef, Kernel, Loop, LoopNest};
use memexplore::obs::{Event, Obs, ObsConfig, ObsSink};
use memexplore::{select, DesignSpace, Explorer, Objective, Record, SearchOptions};
use memsim::{Replacement, WritePolicy};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A random rectangular 2-D stencil kernel (same family as
/// `random_kernels.rs`): 1–2 arrays, 2–4 references with offsets in
/// {-1, 0, 1}, loops over the interior.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    let dims = (5usize..10, 5usize..10);
    let n_arrays = 1usize..=2;
    let refs = proptest::collection::vec((0usize..2, -1i64..=1, -1i64..=1), 2..=4);
    (dims, n_arrays, refs).prop_map(|((rows, cols), n_arrays, refs)| {
        let arrays: Vec<ArrayDecl> = (0..n_arrays)
            .map(|i| ArrayDecl::new(format!("a{i}"), &[rows, cols], 4))
            .collect();
        let body: Vec<ArrayRef> = refs
            .into_iter()
            .map(|(aid, c0, c1)| {
                let subs = vec![AffineExpr::var(0) + c0, AffineExpr::var(1) + c1];
                ArrayRef::read(ArrayId(aid % n_arrays), subs)
            })
            .collect();
        let nest = LoopNest {
            loops: vec![Loop::new(1, rows as i64 - 2), Loop::new(1, cols as i64 - 2)],
            refs: body,
        };
        Kernel::new("random", arrays, nest)
    })
}

/// A random small design grid: a contiguous run of power-of-two cache
/// sizes, 1–2 line sizes, a prefix of the assoc ladder, small tilings,
/// and optionally the policy axes (so the search's policy tie-breaking
/// is exercised too).
fn arb_space() -> impl Strategy<Value = DesignSpace> {
    (
        0usize..3,  // first cache size
        2usize..4,  // how many cache sizes
        1usize..=2, // how many line sizes
        1usize..=3, // how many assocs
        1usize..=2, // how many tilings
        proptest::bool::ANY,
    )
        .prop_map(|(t0, nt, nl, na, nb, policies)| {
            let sizes = [16usize, 32, 64, 128, 256];
            let mut space = DesignSpace {
                cache_sizes: sizes[t0..(t0 + nt).min(sizes.len())].to_vec(),
                line_sizes: [4usize, 8][..nl].to_vec(),
                assocs: [1usize, 2, 4][..na].to_vec(),
                tilings: [1u64, 2][..nb].to_vec(),
                min_lines: 1,
                ..Default::default()
            };
            if policies {
                space.replacements = vec![Replacement::Lru, Replacement::Fifo];
                space.write_policies = vec![WritePolicy::default()];
            }
            space
        })
}

fn arb_objective() -> impl Strategy<Value = Objective> {
    prop_oneof![
        Just(Objective::Energy),
        Just(Objective::Cycles),
        (0.1f64..4.0, 0.1f64..4.0).prop_map(|(e, c)| Objective::Weighted {
            energy_weight: e,
            cycles_weight: c,
        }),
    ]
}

/// A `Write` sink capturing the JSONL log in memory for replay.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The incumbent cost sequence replayed from a captured JSONL log, in
/// emission order, decoded from the exact `cost_bits` payload.
fn incumbent_costs(log: &[u8]) -> Vec<f64> {
    String::from_utf8_lossy(log)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Event::parse(l).expect("log line parses"))
        .filter(|e| e.phase == "search" && e.name == "incumbent")
        .map(|e| f64::from_bits(e.u64_field("cost_bits").expect("cost_bits field")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gap_is_certified_and_bound_is_admissible(
        kernel in arb_kernel(),
        space in arb_space(),
        objective in arb_objective(),
        beam in prop_oneof![Just(None), Just(Some(1usize)), Just(Some(3usize))],
    ) {
        let explorer = Explorer::default();
        let records = explorer.explore(&kernel, &space);
        prop_assert_eq!(records.len(), space.design_count());
        let optimum = records
            .iter()
            .map(|r| objective.cost(r))
            .fold(f64::INFINITY, f64::min);

        let out = explorer.search(&kernel, &space, &SearchOptions {
            objective,
            beam,
            ..Default::default()
        });
        prop_assert!(out.gap() >= 0.0, "negative gap {}", out.gap());
        prop_assert!(
            out.lower_bound <= optimum + 1e-9,
            "bound {} above optimum {optimum}", out.lower_bound
        );
        prop_assert!(out.incumbent_cost() >= optimum - 1e-9);
        if beam.is_none() {
            // Unbounded gap-0 search is exact and bit-identical to the
            // sweep's first-wins minimum.
            prop_assert!(out.complete);
            prop_assert_eq!(out.gap(), 0.0);
            let incumbent = out.incumbent.as_ref().expect("complete => incumbent");
            let oracle: &Record = match objective {
                Objective::Energy => select::min_energy(&records).expect("non-empty"),
                Objective::Cycles => select::min_cycles(&records).expect("non-empty"),
                Objective::Weighted { .. } => {
                    prop_assert_eq!(out.incumbent_cost(), optimum);
                    incumbent
                }
            };
            prop_assert_eq!(incumbent, oracle);
        }
    }

    #[test]
    fn incumbent_costs_replayed_from_the_log_never_increase(
        kernel in arb_kernel(),
        space in arb_space(),
        objective in arb_objective(),
    ) {
        let buf = SharedBuf::default();
        let obs = Obs::new(ObsConfig {
            log: Some(ObsSink::Writer(Box::new(buf.clone()))),
            ..Default::default()
        })
        .expect("in-memory obs");
        let out = Explorer::default()
            .with_obs(Arc::clone(&obs))
            .search(&kernel, &space, &SearchOptions {
                objective,
                ..Default::default()
            });
        obs.finish();
        let costs = incumbent_costs(&buf.0.lock().expect("buffer lock"));
        prop_assert!(!costs.is_empty(), "no incumbent events logged");
        for w in costs.windows(2) {
            prop_assert!(
                w[1] <= w[0],
                "incumbent cost increased: {} -> {}", w[0], w[1]
            );
        }
        // The last logged incumbent is the returned one.
        prop_assert_eq!(*costs.last().expect("non-empty"), out.incumbent_cost());
    }

    #[test]
    fn deadline_results_are_well_formed(
        kernel in arb_kernel(),
        space in arb_space(),
        objective in arb_objective(),
    ) {
        let explorer = Explorer::default();
        let out = explorer.search(&kernel, &space, &SearchOptions {
            objective,
            deadline: Some(Duration::from_nanos(1)),
            ..Default::default()
        });
        prop_assert_eq!(out.candidates, space.design_count());
        prop_assert!(out.gap() >= 0.0);
        // A cancelled run must not claim certification unless the bound
        // actually closed before the deadline hit.
        if out.cancelled {
            prop_assert!(
                out.telemetry.designs_evaluated < out.candidates
                    || out.complete
            );
        }
        // Whatever partial incumbent exists is grid-consistent: it is the
        // bit-exact record of the sweep index it claims.
        if let Some(incumbent) = &out.incumbent {
            let idx = out.incumbent_index.expect("incumbent has an index");
            let records = explorer.explore(&kernel, &space);
            prop_assert_eq!(incumbent, &records[idx]);
            prop_assert!(out.lower_bound <= objective.cost(incumbent) + 1e-9);
        }
    }
}
