//! Cross-crate pipeline consistency: trace → simulate → classify → models.

use analysis::min_cache::MinCacheReport;
use energy::{DacEnergyModel, SramPart};
use loopir::{kernels, AccessKind, AffineExpr, DataLayout, TraceGen};
use memexplore::{CacheDesign, CycleModel, Evaluator};
use memsim::din::{parse_din, write_din, DinLabel, DinRecord};
use memsim::{CacheConfig, Simulator, TraceEvent};

fn read_events(kernel: &loopir::Kernel) -> Vec<TraceEvent> {
    let layout = DataLayout::natural(kernel);
    TraceGen::new(kernel, &layout)
        .filter(|a| a.kind == AccessKind::Read)
        .map(|a| TraceEvent::read(a.addr, a.size))
        .collect()
}

#[test]
fn record_matches_manual_pipeline() {
    // Evaluator output must equal simulating + applying the models by hand.
    let kernel = kernels::dequant(31);
    let design = CacheDesign::new(64, 8, 1, 1);
    let eval = Evaluator::default().unoptimized();
    let record = eval.evaluate(&kernel, design);

    let cfg = CacheConfig::new(64, 8, 1).expect("valid geometry");
    let report = Simulator::simulate(cfg, read_events(&kernel));
    assert_eq!(record.miss_rate, report.stats.read_miss_rate());

    let cycles =
        CycleModel.cycles_from_counts(report.stats.read_hits, report.stats.read_misses(), 1, 8, 1);
    assert!((record.cycles - cycles).abs() < 1e-9);

    let energy = DacEnergyModel::new(SramPart::cy7c_2mbit()).trace_energy_nj(&report);
    assert!((record.energy_nj - energy).abs() < 1e-6);
}

#[test]
fn din_round_trip_preserves_simulation_results() {
    // Export a kernel trace to Dinero format, parse it back, and check the
    // simulation is identical.
    let kernel = kernels::matadd(6);
    let events = read_events(&kernel);
    let records: Vec<DinRecord> = events
        .iter()
        .map(|e| DinRecord {
            label: DinLabel::Read,
            addr: e.addr,
        })
        .collect();
    let mut buf = Vec::new();
    write_din(&mut buf, &records).expect("in-memory write cannot fail");
    let parsed = parse_din(buf.as_slice()).expect("own output parses");
    let replayed: Vec<TraceEvent> = parsed.iter().map(|r| TraceEvent::read(r.addr, 4)).collect();

    let cfg = CacheConfig::new(32, 4, 1).expect("valid geometry");
    let a = Simulator::simulate(cfg, events);
    let b = Simulator::simulate(cfg, replayed);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn min_cache_bound_is_sufficient_for_conflict_freedom() {
    // Placing Compress into its analytical minimum power-of-two cache must
    // leave zero conflict misses.
    let kernel = kernels::compress(31);
    for line in [8u64, 16, 32] {
        let bound = MinCacheReport::analyze(&kernel, line);
        let t = bound.min_pow2_cache_bytes().max(2 * line);
        let placed =
            analysis::placement::optimize_layout(&kernel, t, line).expect("placement succeeds");
        let cfg = CacheConfig::new(t as usize, line as usize, 1).expect("valid geometry");
        let events = TraceGen::new(&kernel, &placed.layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        let rep = Simulator::simulate_classified(cfg, events);
        assert_eq!(
            rep.miss_classes.expect("classified").conflict,
            0,
            "line {line}: min-cache bound {t} was not conflict-free"
        );
    }
}

#[test]
fn classification_sums_match_plain_simulation() {
    let kernel = kernels::sor(31);
    let events = read_events(&kernel);
    let cfg = CacheConfig::new(64, 8, 2).expect("valid geometry");
    let plain = Simulator::simulate(cfg, events.iter().copied());
    let classified = Simulator::simulate_classified(cfg, events);
    assert_eq!(plain.stats, classified.stats);
    assert_eq!(
        classified.miss_classes.expect("classified").total(),
        plain.stats.misses()
    );
}

#[test]
fn gray_bus_switches_less_than_binary_on_sequential_traces() {
    use loopir::{ArrayRef, Loop, LoopNest};
    use memsim::BusEncoding;
    // Gray coding wins on unit-stride address streams (its design point):
    // one line toggles per step vs. ~two for binary. Larger strides or
    // interleaved bodies can go either way, so the comparison uses a
    // byte-stride stream.
    let a = loopir::ArrayDecl::new("a", &[512], 1);
    let nest = LoopNest {
        loops: vec![Loop::new(0, 511)],
        refs: vec![ArrayRef::read(loopir::ArrayId(0), vec![AffineExpr::var(0)])],
    };
    let kernel = loopir::Kernel::new("stream", vec![a], nest);
    let events = read_events(&kernel);
    let cfg = CacheConfig::new(64, 8, 1).expect("valid geometry");
    let mut gray = Simulator::with_options(cfg, BusEncoding::Gray, false);
    gray.run(events.iter().copied());
    let mut bin = Simulator::with_options(cfg, BusEncoding::Binary, false);
    bin.run(events);
    assert!(
        gray.into_report().cpu_bus.bit_switches < bin.into_report().cpu_bus.bit_switches,
        "Gray coding should reduce address-bus switching on loop traces"
    );
}

#[test]
fn kamble_ghose_and_dac_agree_on_placement_benefit() {
    // Both energy models must rank the optimized layout at or below the
    // natural one for Compress (same miss counts feed both).
    let kernel = kernels::compress(31);
    let cfg = CacheConfig::new(64, 8, 1).expect("valid geometry");

    let natural = DataLayout::natural(&kernel);
    let placed = analysis::placement::optimize_layout(&kernel, 64, 8)
        .expect("placement succeeds")
        .layout;
    let run = |layout: &DataLayout| {
        let events = TraceGen::new(&kernel, layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        Simulator::simulate(cfg, events)
    };
    let nat = run(&natural);
    let opt = run(&placed);

    let dac = DacEnergyModel::new(SramPart::cy7c_2mbit());
    let kg = energy::KambleGhoseModel::new(SramPart::cy7c_2mbit());
    assert!(dac.trace_energy_nj(&opt) <= dac.trace_energy_nj(&nat));
    assert!(kg.trace_energy_nj(&opt) <= kg.trace_energy_nj(&nat));
}
