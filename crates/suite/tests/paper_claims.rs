//! The paper's headline claims, verified end-to-end against the simulator.

use analysis::placement::optimize_layout;
use energy::SramPart;
use loopir::{kernels, AccessKind, TraceGen};
use memexplore::composite::as_records;
use memexplore::{select, CacheDesign, DesignSpace, Evaluator, Explorer};
use memsim::{CacheConfig, Simulator, TraceEvent};

/// §4.1: for compatible access patterns, the off-chip assignment eliminates
/// conflict misses entirely.
#[test]
fn claim_placement_eliminates_conflict_misses() {
    for kernel in [kernels::compress(31), kernels::sor(31), kernels::matadd(6)] {
        let placed = optimize_layout(&kernel, 64, 8).expect("placement succeeds");
        assert!(placed.conflict_free, "{} not conflict-free", kernel.name);
        let cfg = CacheConfig::new(64, 8, 1).expect("valid geometry");
        let events = TraceGen::new(&kernel, &placed.layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        let rep = Simulator::simulate_classified(cfg, events);
        assert_eq!(
            rep.miss_classes.expect("classified").conflict,
            0,
            "{} still has conflict misses",
            kernel.name
        );
    }
}

/// §1/§3: increasing cache size reduces the miss rate but not necessarily
/// the energy.
#[test]
fn claim_energy_is_not_monotone_in_cache_size() {
    let kernel = kernels::compress(31);
    let eval = Evaluator::default();
    let records: Vec<_> = [16usize, 32, 64, 128, 256, 512]
        .iter()
        .map(|&t| eval.evaluate(&kernel, CacheDesign::new(t, 4, 1, 1)))
        .collect();
    // Miss rate is non-increasing along the size axis…
    for w in records.windows(2) {
        assert!(
            w[1].miss_rate <= w[0].miss_rate + 1e-9,
            "miss rate must not grow with size"
        );
    }
    // …but the energy sequence has at least one increase.
    assert!(
        records.windows(2).any(|w| w[1].energy_nj > w[0].energy_nj),
        "energy was monotone decreasing — the paper's tension is missing"
    );
}

/// §3/Fig. 1: the off-chip energy decides whether a small or a large cache
/// minimises energy.
#[test]
fn claim_em_extremes_flip_the_optimum_size() {
    let kernel = kernels::compress(31);
    let designs: Vec<CacheDesign> = [16usize, 32, 64, 128, 256, 512]
        .iter()
        .map(|&t| CacheDesign::new(t, 4, 1, 1))
        .collect();
    let best_size = |part: SramPart| {
        let records = Explorer::new(Evaluator::with_part(part)).explore_designs(&kernel, &designs);
        select::min_energy(&records)
            .expect("non-empty")
            .design
            .cache_size
    };
    let cheap = best_size(SramPart::low_power_2mbit());
    let dear = best_size(SramPart::sram_16mbit());
    assert!(
        cheap < dear,
        "cheap Em should favour a smaller cache ({cheap}) than dear Em ({dear})"
    );
}

/// §4.2: blocking matrix multiplication has a sweet spot at or below the
/// number of cache lines, and degrades past it.
#[test]
fn claim_tiling_sweet_spot_for_matmul() {
    let eval = Evaluator::default();
    let kernel = kernels::matmul(31);
    let mr = |b: u64| {
        eval.evaluate(&kernel, CacheDesign::new(64, 8, 1, b))
            .miss_rate
    };
    let untiled = mr(1);
    let sweet = mr(4); // 8 lines; B = 4 keeps the working set resident
    let oversized = mr(16);
    assert!(
        sweet < untiled,
        "tiling must help matmul: {sweet} vs {untiled}"
    );
    assert!(
        oversized > sweet,
        "tiles beyond the cache must hurt: {oversized} vs {sweet}"
    );
}

/// §5: the whole-program optimum differs from the kernels' own optima, and
/// the minimum-energy configuration differs from the minimum-time one.
#[test]
fn claim_mpeg_whole_program_optimum_is_its_own() {
    let program = mpeg::decoder();
    let explorer = Explorer::default();
    // A reduced space keeps the test fast while leaving room for divergence.
    let space = DesignSpace {
        cache_sizes: vec![16, 64, 256, 1024],
        line_sizes: vec![4, 16],
        assocs: vec![1, 8],
        tilings: vec![1, 8],
        min_lines: 4,
        ..Default::default()
    };
    let designs = space.designs();
    let mut kernel_optima = Vec::new();
    let mut per_kernel = Vec::new();
    for (kernel, _) in &program.components {
        let records = explorer.explore_designs(kernel, &designs);
        kernel_optima.push(select::min_energy(&records).expect("non-empty").design);
        per_kernel.push(records);
    }
    let composites: Vec<_> = (0..designs.len())
        .map(|i| program.aggregate(per_kernel.iter().map(|rs| rs[i].clone()).collect()))
        .collect();
    let flat = as_records(&composites);
    let e_min = select::min_energy(&flat).expect("non-empty").design;
    let t_min = select::min_cycles(&flat).expect("non-empty").design;
    assert_ne!(e_min, t_min, "energy and time optima should differ");
    let agreeing = kernel_optima.iter().filter(|&&d| d == e_min).count();
    assert!(
        agreeing < kernel_optima.len(),
        "whole-program optimum should not match every kernel optimum"
    );
}

/// §4.1/Fig. 9: without the assignment the miss rate is extreme (the paper
/// reports 0.969–0.999 for the stencil kernels).
#[test]
fn claim_unoptimized_miss_rates_are_extreme() {
    let d = CacheDesign::new(64, 8, 1, 1);
    for kernel in [
        kernels::compress(31),
        kernels::pde(31),
        kernels::dequant(31),
    ] {
        let nat = Evaluator::default().unoptimized().evaluate(&kernel, d);
        assert!(
            nat.miss_rate > 0.9,
            "{}: natural-layout miss rate {} not extreme",
            kernel.name,
            nat.miss_rate
        );
    }
}

/// §2.2 + §2.3 shapes: associativity lengthens the hit path (cycles per hit
/// 1 → 1.14) even when it cannot reduce misses.
#[test]
fn claim_associativity_costs_cycles_when_conflicts_are_gone() {
    let kernel = kernels::compress(31);
    let eval = Evaluator::default();
    let direct = eval.evaluate(&kernel, CacheDesign::new(64, 8, 1, 1));
    let eight = eval.evaluate(&kernel, CacheDesign::new(64, 8, 8, 1));
    // Placement already removed conflicts, so the miss rate cannot improve…
    assert!(eight.miss_rate >= direct.miss_rate - 1e-9);
    // …and the longer hit path costs cycles.
    assert!(eight.cycles > direct.cycles);
}
