//! Property tests of the content-addressed job cache:
//!
//! 1. **Canonicalization** — semantically identical job requests hash to
//!    the same key no matter how the JSON is spelled: key order permuted,
//!    whitespace varied, defaulted fields written out explicitly.
//! 2. **Sensitivity** — changing any single model/grid/objective
//!    parameter changes the key.
//! 3. **Integrity under eviction** — an LRU cache under random
//!    insert/lookup/evict pressure never serves stale or truncated
//!    bytes: every hit is bit-exactly the value fulfilled for that key.

mod common;

use common::kernel_source;
use memexplore::obs::parse_json;
use memexplore::{CacheKey, Lookup, ResultCache};
use memx::serve::JobSpec;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Splitmix-style deterministic shuffle (proptest drives the seed).
fn shuffled<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut v = items.to_vec();
    for i in (1..v.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

/// Renders a JSON object from `(key, raw-value)` members with
/// seed-driven whitespace between tokens.
fn render(members: &[(String, String)], mut seed: u64) -> String {
    let mut ws = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        match (seed >> 33) % 4 {
            0 => "",
            1 => " ",
            2 => "\n  ",
            _ => "\t",
        }
    };
    let mut s = String::from("{");
    for (i, (k, v)) in members.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(ws());
        s.push('"');
        s.push_str(k);
        s.push_str("\":");
        s.push_str(ws());
        s.push_str(v);
    }
    s.push_str(ws());
    s.push('}');
    s
}

fn key_of(body: &str) -> CacheKey {
    let json = parse_json(body).expect("generated body is valid JSON");
    JobSpec::from_json(&json)
        .unwrap_or_else(|e| panic!("generated body is a valid job: {e} in {body}"))
        .cache_key()
}

fn json_str(s: &str) -> String {
    let mut out = String::new();
    memexplore::obs::push_json_str(&mut out, s);
    out
}

/// The non-default explore knobs, as `(key, raw JSON value)` members, and
/// their spelled-out default counterparts.
fn explore_knobs() -> Vec<(String, String, String)> {
    vec![
        ("part".into(), "\"lp2m\"".into(), "\"cy7c\"".into()),
        ("em_nj".into(), "2.5".into(), String::new()),
        ("natural".into(), "true".into(), "false".into()),
        ("analytical".into(), "true".into(), "false".into()),
        ("bound_cycles".into(), "12000".into(), String::new()),
        ("bound_energy".into(), "90000".into(), String::new()),
        ("pareto".into(), "true".into(), "false".into()),
        ("engine".into(), "\"per-design\"".into(), "\"fused\"".into()),
    ]
}

proptest! {
    /// Canonicalization: permuting member order, varying whitespace, and
    /// writing defaults explicitly never changes the key.
    #[test]
    fn key_is_invariant_to_spelling(
        include in proptest::collection::vec(proptest::bool::ANY, 8),
        perm_a in 0u64..u64::MAX,
        perm_b in 0u64..u64::MAX,
        ws_a in 0u64..u64::MAX,
        ws_b in 0u64..u64::MAX,
        explicit_defaults in proptest::bool::ANY,
    ) {
        let kernel = json_str(&kernel_source("compress"));
        let mut members: Vec<(String, String)> = vec![
            ("command".into(), "\"explore\"".into()),
            ("kernel".into(), kernel),
        ];
        for (on, (k, set, default)) in include.iter().zip(explore_knobs()) {
            if *on {
                members.push((k, set));
            } else if explicit_defaults && !default.is_empty() {
                // Spell the default out in one body, omit it in the other:
                // both must hash identically.
                members.push((k, default));
            }
        }
        let body_a = render(&shuffled(&members, perm_a), ws_a);
        // The second rendering drops the explicit defaults.
        let set_members: Vec<(String, String)> = members
            .iter()
            .filter(|(k, v)| {
                k == "command"
                    || k == "kernel"
                    || !explore_knobs()
                        .iter()
                        .any(|(dk, _, dv)| dk == k && dv == v)
            })
            .cloned()
            .collect();
        let body_b = render(&shuffled(&set_members, perm_b), ws_b);
        prop_assert_eq!(key_of(&body_a), key_of(&body_b), "{} vs {}", body_a, body_b);
    }

    /// Sensitivity: flipping any single knob away from the base request
    /// produces a different key.
    #[test]
    fn key_changes_with_any_single_knob(knob in 0usize..8) {
        let kernel = json_str(&kernel_source("compress"));
        let base = format!("{{\"command\":\"explore\",\"kernel\":{kernel}}}");
        let (k, set, _) = explore_knobs().swap_remove(knob);
        let varied = format!("{{\"command\":\"explore\",\"kernel\":{kernel},\"{k}\":{set}}}");
        prop_assert!(key_of(&base) != key_of(&varied), "knob {} did not perturb the key", k);
    }

    /// Integrity: under random insert/lookup/evict pressure with tight
    /// entry and byte bounds, a hit always returns the exact bytes
    /// fulfilled for that key — never truncated, never another key's.
    #[test]
    fn lru_never_serves_stale_or_truncated_bytes(
        ops in proptest::collection::vec((0u8..3, 0u64..12, 1usize..64), 1..120),
        max_entries in 1usize..6,
        max_bytes in 16usize..256,
    ) {
        let cache = ResultCache::new(max_entries, max_bytes);
        // The authoritative value for key k is k repeated `len` times —
        // recomputable, so re-simulation after eviction is modelled too.
        let value_for = |k: u64, len: usize| -> Vec<u8> {
            std::iter::repeat_n(k as u8, len).collect()
        };
        let mut lens: HashMap<u64, usize> = HashMap::new();
        for (op, k, len) in ops {
            let key = CacheKey(u128::from(k));
            match op {
                // Lookup; on miss, fulfill with the canonical value.
                0 | 1 => {
                    let len = *lens.entry(k).or_insert(len);
                    match cache.lookup(key) {
                        Lookup::Hit { value, .. } => {
                            let want = value_for(k, len);
                            prop_assert_eq!(
                                value.as_slice(),
                                want.as_slice(),
                                "hit for key {} returned wrong bytes", k
                            );
                        }
                        Lookup::Miss(flight) => {
                            flight.fulfill(Arc::new(value_for(k, len)), true);
                        }
                    }
                }
                // Evict (a no-op unless resident).
                _ => {
                    cache.evict(key);
                }
            }
            let stats = cache.stats();
            prop_assert!(stats.entries <= max_entries);
        }
    }
}
