//! Robustness of the sweep-checkpoint format against damaged sidecars.
//!
//! A checkpoint file a crashed run leaves behind may be truncated at any
//! byte (torn copy), bit-flipped (storage rot), or written by a different
//! build (version skew) or a different sweep (operator error). Every such
//! file must be rejected with a typed [`CheckpointError`] — never parsed
//! into garbage records and never panicked on.

use loopir::kernels;
use memexplore::checkpoint::{CheckpointError, ENTRY_LEN, HEADER_LEN};
use memexplore::supervisor::sweep_id;
use memexplore::{Checkpoint, CheckpointPolicy, DesignSpace, ExploreError, Explorer, SweepOptions};
use proptest::prelude::*;
use std::path::PathBuf;

/// A real checkpoint: every record of a small compress sweep.
fn real_checkpoint() -> Checkpoint {
    let kernel = kernels::compress(15);
    let designs = DesignSpace::small().designs();
    let explorer = Explorer::default();
    let (records, _) = explorer.explore_designs_with_telemetry(&kernel, &designs);
    Checkpoint {
        sweep_id: sweep_id(&kernel, &designs, &explorer.evaluator),
        entries: records.into_iter().enumerate().collect(),
    }
}

/// Self-cleaning scratch dir for on-disk checkpoint cases.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("memx-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        Self { dir }
    }

    fn ckpt(&self) -> PathBuf {
        self.dir.join("sweep.ckpt")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at *any* byte offset — header, mid-entry, or one byte
    /// short of complete — is a typed error, never a partial parse.
    #[test]
    fn any_truncation_is_rejected(cut in 0.0f64..1.0) {
        let bytes = real_checkpoint().to_bytes();
        let len = (bytes.len() as f64 * cut) as usize;
        prop_assume!(len < bytes.len());
        let err = Checkpoint::from_bytes(&bytes[..len])
            .expect_err("truncated checkpoint must not parse");
        prop_assert!(matches!(
            err,
            CheckpointError::Truncated { .. } | CheckpointError::BadChecksum { .. }
        ), "cut at {len}: unexpected error {err}");
    }

    /// No single byte flip anywhere in the file can smuggle through: the
    /// parse fails, or the flip landed in the sweep-id field — which the
    /// resume path then rejects as a sweep mismatch.
    #[test]
    fn any_byte_flip_is_caught(pos in 0.0f64..1.0, bit in 0u8..8) {
        let original = real_checkpoint();
        let mut bytes = original.to_bytes();
        let at = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        bytes[at] ^= 1 << bit;
        match Checkpoint::from_bytes(&bytes) {
            Err(_) => {}
            Ok(parsed) => {
                prop_assert!(
                    (8..16).contains(&at),
                    "flip at byte {at} parsed without touching the sweep id"
                );
                prop_assert_ne!(parsed.sweep_id, original.sweep_id);
                prop_assert_eq!(parsed.entries, original.entries);
            }
        }
    }
}

#[test]
fn version_skew_is_a_typed_error() {
    let mut bytes = real_checkpoint().to_bytes();
    bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
    assert!(matches!(
        Checkpoint::from_bytes(&bytes),
        Err(CheckpointError::BadVersion {
            found: 2,
            supported: 1
        })
    ));
}

#[test]
fn inconsistent_header_counts_are_rejected() {
    let mut bytes = real_checkpoint().to_bytes();
    // Claim one more entry than the payload length supports.
    let count = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    bytes[16..24].copy_from_slice(&(count + 1).to_le_bytes());
    assert!(matches!(
        Checkpoint::from_bytes(&bytes),
        Err(CheckpointError::BadChecksum { .. })
    ));
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_sweep() {
    let scratch = Scratch::new("mismatch");
    let mut ck = real_checkpoint();
    ck.sweep_id ^= 1;
    ck.write_atomic(&scratch.ckpt()).expect("checkpoint writes");
    let kernel = kernels::compress(15);
    let designs = DesignSpace::small().designs();
    let options = SweepOptions {
        checkpoint: Some(CheckpointPolicy {
            path: scratch.ckpt(),
            every: 32,
            resume: true,
        }),
        ..SweepOptions::default()
    };
    let err = Explorer::default()
        .explore_supervised(&kernel, &designs, &options)
        .expect_err("mismatched sweep id must be rejected");
    assert!(matches!(
        err,
        ExploreError::Checkpoint(CheckpointError::SweepMismatch { .. })
    ));
}

#[test]
fn resume_rejects_out_of_range_design_indices() {
    let scratch = Scratch::new("bad-entry");
    let kernel = kernels::compress(15);
    let designs = DesignSpace::small().designs();
    let mut ck = real_checkpoint();
    // Valid format, valid sweep id, but an entry pointing past the grid.
    ck.entries[0].0 = designs.len();
    ck.write_atomic(&scratch.ckpt()).expect("checkpoint writes");
    let options = SweepOptions {
        checkpoint: Some(CheckpointPolicy {
            path: scratch.ckpt(),
            every: 32,
            resume: true,
        }),
        ..SweepOptions::default()
    };
    let err = Explorer::default()
        .explore_supervised(&kernel, &designs, &options)
        .expect_err("out-of-range entry must be rejected");
    assert!(matches!(
        err,
        ExploreError::Checkpoint(CheckpointError::BadEntry { .. })
    ));
}

#[test]
fn truncated_file_on_disk_is_a_typed_error() {
    let scratch = Scratch::new("torn");
    let bytes = real_checkpoint().to_bytes();
    std::fs::write(scratch.ckpt(), &bytes[..HEADER_LEN + ENTRY_LEN / 2]).expect("tempdir writable");
    assert!(matches!(
        Checkpoint::read(&scratch.ckpt()),
        Err(CheckpointError::Truncated { .. })
    ));
}
