//! Property and fault-injection tests of the shard protocol behind
//! distributed sweeps (`memexplore::shard`), driven through the public
//! crate API the `memx sweep` coordinator uses.
//!
//! Unconditional properties:
//!
//! 1. **Partition** — every grid partition is a contiguous, complete,
//!    gap-free cover with near-even shard sizes.
//! 2. **Backoff** — the retry schedule is deterministic, exponential in
//!    the attempt, and its jitter stays within half the base delay.
//! 3. **Merge** — for any grid and shard count, `run_sharded` over an
//!    in-process executor reproduces the worker records bit-identically
//!    in grid order, with zero retries and all workers surviving.
//!
//! With `--features fault-injection`, the deterministic fault plans
//! additionally pin the recovery ladder: worker loss → resumed retry,
//! stalled heartbeat → speculative re-dispatch with first-complete-wins
//! dedupe, corrupt stream → typed rejection and fresh re-dispatch, and
//! quarantine propagation into the merged telemetry.

use memexplore::shard::ShardFn;
use memexplore::{
    backoff_delay, partition, run_sharded, CacheDesign, CoordinatorOptions, Record, ShardOutput,
    ShardSpec, SweepTelemetry, ThreadExecutor,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn design(i: usize) -> CacheDesign {
    CacheDesign::new(64 << (i % 4), 4 << (i % 3), 1 + i % 2, 1 + (i as u64 % 8))
}

/// A synthetic, deterministic record for grid slot `global` — the merge
/// laws only need bit-stable payloads, not real simulations.
fn record(global: usize) -> Record {
    Record {
        design: design(global),
        miss_rate: (global as f64).mul_add(0.001, 0.125),
        cycles: 1000.0 + global as f64,
        energy_nj: 42.5 * (global as f64 + 1.0),
        trip_count: 31 * (global as u64 + 1),
        conflict_free: global.is_multiple_of(2),
    }
}

/// A well-behaved in-process worker over the synthetic grid, quarantining
/// every global index in `quarantine`.
fn worker(quarantine: Vec<usize>) -> Arc<ShardFn> {
    Arc::new(move |spec: &ShardSpec| {
        let mut entries = Vec::new();
        let mut quarantined = Vec::new();
        for local in 0..spec.len() {
            let global = spec.start + local;
            if quarantine.contains(&global) {
                quarantined.push((local, format!("injected quarantine at {global}")));
            } else {
                entries.push((local, record(global)));
            }
        }
        Ok(ShardOutput {
            sweep_id: spec.sweep_id,
            entries,
            quarantined,
        })
    })
}

fn fast_options() -> CoordinatorOptions {
    CoordinatorOptions {
        backoff: Duration::from_millis(1),
        poll: Duration::from_micros(200),
        ..CoordinatorOptions::default()
    }
}

fn fail_local(spec: &ShardSpec) -> Result<ShardOutput, memexplore::ShardError> {
    panic!("local fallback must not run for shard {}", spec.index)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_is_a_contiguous_even_cover(total in 0usize..3000, shards in 1usize..64) {
        let specs = partition(total, shards);
        // Complete, contiguous, gap-free.
        let mut next = 0usize;
        for (i, s) in specs.iter().enumerate() {
            prop_assert_eq!(s.index, i);
            prop_assert_eq!(s.start, next);
            prop_assert!(s.end > s.start, "empty shard in the cover");
            next = s.end;
        }
        prop_assert_eq!(next, total);
        // Never more shards than designs, and near-even: sizes differ by
        // at most one.
        prop_assert!(specs.len() <= shards.min(total.max(1)));
        if let (Some(min), Some(max)) = (
            specs.iter().map(ShardSpec::len).min(),
            specs.iter().map(ShardSpec::len).max(),
        ) {
            prop_assert!(max - min <= 1, "uneven partition: {min}..{max}");
        }
    }

    #[test]
    fn backoff_is_deterministic_exponential_with_bounded_jitter(
        base_ms in 1u64..500,
        seed in 0u64..u64::MAX,
        shard in 0usize..64,
        attempt in 1u32..10,
    ) {
        let base = Duration::from_millis(base_ms);
        let a = backoff_delay(base, seed, shard, attempt);
        let b = backoff_delay(base, seed, shard, attempt);
        prop_assert_eq!(a, b, "schedule must be deterministic");
        // Exponential floor (exponent capped at 6) and jitter ceiling of
        // half the base delay.
        let floor = base * (1u32 << (attempt - 1).min(6));
        prop_assert!(a >= floor, "delay {a:?} under exponential floor {floor:?}");
        prop_assert!(
            a <= floor + base / 2 + Duration::from_millis(1),
            "delay {a:?} exceeds jitter ceiling over {floor:?}"
        );
    }

    #[test]
    fn sharded_merge_reproduces_the_grid_bit_identically(
        total in 1usize..400,
        shards in 1usize..16,
        slots in 1usize..5,
    ) {
        let designs: Vec<CacheDesign> = (0..total).map(design).collect();
        let specs = partition(total, shards);
        let executor = ThreadExecutor::new(slots, worker(Vec::new()));
        let outcome = run_sharded(
            &executor,
            &specs,
            &designs,
            &fail_local,
            &fast_options(),
            None,
        )
        .expect("sharded sweep completes");
        prop_assert!(outcome.is_complete());
        prop_assert!(outcome.errors.is_empty());
        for (i, slot) in outcome.records.iter().enumerate() {
            prop_assert_eq!(slot.as_ref(), Some(&record(i)), "slot {i} diverged");
        }
        prop_assert_eq!(outcome.stats.dispatched, specs.len());
        prop_assert_eq!(outcome.stats.retried, 0);
        prop_assert_eq!(outcome.stats.redispatched, 0);
        prop_assert_eq!(outcome.stats.workers_surviving, slots);
    }
}

#[test]
fn quarantines_propagate_into_errors_and_telemetry() {
    let total = 60;
    let quarantined = vec![3usize, 17, 41];
    let designs: Vec<CacheDesign> = (0..total).map(design).collect();
    let specs = partition(total, 4);
    let executor = ThreadExecutor::new(2, worker(quarantined.clone()));
    let outcome = run_sharded(
        &executor,
        &specs,
        &designs,
        &fail_local,
        &fast_options(),
        None,
    )
    .expect("sharded sweep completes");
    let mut reported: Vec<usize> = outcome.errors.iter().map(|e| e.design_index).collect();
    reported.sort_unstable();
    assert_eq!(
        reported, quarantined,
        "quarantines must merge by grid index"
    );
    for e in &outcome.errors {
        assert_eq!(e.engine, "worker");
        assert!(e.message.contains("injected quarantine"));
        assert_eq!(e.design, designs[e.design_index]);
    }
    // The unaffected slots are all present; the quarantined ones are not.
    for (i, slot) in outcome.records.iter().enumerate() {
        assert_eq!(slot.is_none(), quarantined.contains(&i), "slot {i}");
    }
    // MergeStats land in the shared telemetry schema.
    let mut t = SweepTelemetry::default();
    outcome.stats.fill(&mut t);
    assert_eq!(t.shards_dispatched, 4);
    assert_eq!(t.workers_surviving, 2);
    let json = t.to_json();
    assert!(json.contains("\"shards_dispatched\":4"), "{json}");
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use memexplore::FaultPlan;

    /// Worker loss mid-shard: the coordinator retries (resumable) within
    /// its budget and the merge stays bit-identical.
    #[test]
    fn dropped_worker_is_retried_and_merge_is_exact() {
        let total = 90;
        let designs: Vec<CacheDesign> = (0..total).map(design).collect();
        let specs = partition(total, 5);
        let executor = ThreadExecutor::new(2, worker(Vec::new())).with_fault(FaultPlan {
            drop_worker: Some((2, 0)),
            ..FaultPlan::none()
        });
        let outcome = run_sharded(
            &executor,
            &specs,
            &designs,
            &fail_local,
            &fast_options(),
            None,
        )
        .expect("sharded sweep completes");
        assert!(outcome.is_complete());
        assert_eq!(
            outcome.stats.retried, 1,
            "one retry for the dropped attempt"
        );
        for (i, slot) in outcome.records.iter().enumerate() {
            assert_eq!(slot.as_ref(), Some(&record(i)), "slot {i} diverged");
        }
    }

    /// Stalled heartbeat: straggler detection launches a speculative
    /// twin; the first completion wins and the loser's duplicate entries
    /// are deduped, never double-merged.
    #[test]
    fn straggler_gets_a_speculative_twin_and_duplicates_dedupe() {
        let total = 80;
        let designs: Vec<CacheDesign> = (0..total).map(design).collect();
        let specs = partition(total, 4);
        let executor = ThreadExecutor::new(4, worker(Vec::new())).with_fault(FaultPlan {
            stall_heartbeat: Some((1, 0)),
            ..FaultPlan::none()
        });
        let options = CoordinatorOptions {
            straggler_after: Duration::from_millis(20),
            ..fast_options()
        };
        let outcome = run_sharded(&executor, &specs, &designs, &fail_local, &options, None)
            .expect("sharded sweep completes");
        assert!(outcome.is_complete());
        assert!(
            outcome.stats.redispatched >= 1,
            "straggler must trigger a speculative re-dispatch: {:?}",
            outcome.stats
        );
        for (i, slot) in outcome.records.iter().enumerate() {
            assert_eq!(slot.as_ref(), Some(&record(i)), "slot {i} diverged");
        }
    }

    /// Corrupt result stream: rejected by the typed checkpoint
    /// validation (not merged, not resumed) and re-dispatched fresh.
    #[test]
    fn corrupt_stream_is_rejected_and_redispatched_fresh() {
        let total = 70;
        let designs: Vec<CacheDesign> = (0..total).map(design).collect();
        let specs = partition(total, 3);
        let executor = ThreadExecutor::new(2, worker(Vec::new())).with_fault(FaultPlan {
            corrupt_stream: Some((0, 0)),
            ..FaultPlan::none()
        });
        let outcome = run_sharded(
            &executor,
            &specs,
            &designs,
            &fail_local,
            &fast_options(),
            None,
        )
        .expect("sharded sweep completes");
        assert!(outcome.is_complete());
        assert_eq!(
            outcome.stats.retried, 1,
            "corrupt stream must cost exactly one retry: {:?}",
            outcome.stats
        );
        for (i, slot) in outcome.records.iter().enumerate() {
            assert_eq!(slot.as_ref(), Some(&record(i)), "slot {i} diverged");
        }
    }

    /// Exhausted retry budget: the coordinator degrades the shard to
    /// local execution instead of failing the sweep, and reports the
    /// lost capacity in `workers_surviving`.
    #[test]
    fn exhausted_budget_degrades_to_local_execution() {
        let total = 40;
        let designs: Vec<CacheDesign> = (0..total).map(design).collect();
        let specs = partition(total, 2);
        // Every attempt of shard 1 drops (budget 0 → first loss degrades).
        let executor = ThreadExecutor::new(2, worker(Vec::new())).with_fault(FaultPlan {
            drop_worker: Some((1, 0)),
            ..FaultPlan::none()
        });
        let options = CoordinatorOptions {
            retry_budget: 0,
            ..fast_options()
        };
        let local = |spec: &ShardSpec| worker(Vec::new())(spec);
        let outcome = run_sharded(&executor, &specs, &designs, &local, &options, None)
            .expect("sharded sweep completes");
        assert!(outcome.is_complete());
        assert_eq!(outcome.stats.degraded, 1, "{:?}", outcome.stats);
        assert_eq!(outcome.stats.workers_surviving, 1, "{:?}", outcome.stats);
        for (i, slot) in outcome.records.iter().enumerate() {
            assert_eq!(slot.as_ref(), Some(&record(i)), "slot {i} diverged");
        }
    }
}
