//! Umbrella crate: hosts the workspace-level examples and integration tests.
