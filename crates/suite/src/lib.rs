//! Umbrella crate: the home of the workspace-level examples and
//! integration tests.
//!
//! The crate itself exports nothing — its value is in `tests/` and in
//! the `[[example]]` entries of its manifest. `cargo test -p suite`
//! runs the cross-crate integration suite:
//!
//! * `tests/differential.rs` — the trace-once arena engine against the
//!   naive regenerate-per-design reference, bit for bit.
//! * `tests/fused_oracle.rs` — the fused one-pass replay engine against
//!   the per-design engine on every paper kernel, explore and pareto.
//! * `tests/pareto_oracle.rs` — branch-and-bound pruning against the
//!   exhaustive frontier on every paper kernel.
//! * `tests/regression_kernels.rs` — pinned metrics for the paper's
//!   five kernels so model drift is caught at the digit level.
//! * `tests/paper_claims.rs` — the qualitative claims of the source
//!   paper (tiling helps, Gray coding helps, ...) hold end to end.
//! * `tests/end_to_end.rs`, `tests/pipeline.rs` — kernel text in,
//!   report out, through every public layer.
//! * `tests/random_kernels.rs` — property tests over randomly generated
//!   kernels.
//! * `tests/extensions.rs` — the beyond-paper extensions (replacement
//!   policies, write policies, line buffer, icache split).
//!
//! The examples under `examples/` double as documentation: each one is
//! a runnable walkthrough of one workflow (quickstart, tiling study,
//! off-chip placement, MPEG decoder, ...).
