//! Argument-hygiene contract of the `bench_*` binaries: they take no
//! arguments, and anything unexpected exits 2 with a one-line `error:`
//! message on stderr — the same fail-fast contract as `memx` itself.
//! Pinned against the real binaries via `CARGO_BIN_EXE_*`.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("bench binary runs")
}

fn assert_rejects(bin: &str, name: &str) {
    for args in [&["--wat"][..], &["extra"][..], &["--help", "now"][..]] {
        let out = run(bin, args);
        assert_eq!(out.status.code(), Some(2), "{name} {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.starts_with("error: "), "{name} {args:?}: {err:?}");
        assert_eq!(
            err.trim_end().lines().count(),
            1,
            "{name} {args:?} must fail with one line: {err:?}"
        );
        assert!(
            err.contains(name) && err.contains(args[0]),
            "{name} {args:?}: message must name the binary and the argument: {err:?}"
        );
        assert!(
            out.stdout.is_empty(),
            "{name} {args:?}: no stdout on a usage error"
        );
    }
}

#[test]
fn bench_explore_rejects_unknown_arguments() {
    assert_rejects(env!("CARGO_BIN_EXE_bench_explore"), "bench_explore");
}

#[test]
fn bench_pareto_rejects_unknown_arguments() {
    assert_rejects(env!("CARGO_BIN_EXE_bench_pareto"), "bench_pareto");
}

#[test]
fn bench_search_rejects_unknown_arguments() {
    assert_rejects(env!("CARGO_BIN_EXE_bench_search"), "bench_search");
}

#[test]
fn bench_serve_rejects_unknown_arguments() {
    assert_rejects(env!("CARGO_BIN_EXE_bench_serve"), "bench_serve");
}
