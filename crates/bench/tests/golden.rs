//! Golden-snapshot tests for the paper-figure tables.
//!
//! The committed fixtures pin the exact rendered output of the snapshot
//! figures — any change to the simulator, energy model, placement, or
//! sweep engine that shifts a single digit fails here first. After an
//! *intentional* model change, regenerate the fixtures and review the
//! diff:
//!
//! ```text
//! for f in fig01 fig02 fig03 fig07 fig10; do
//!   cargo run --release -p bench --bin $f > crates/bench/tests/golden/$f.txt
//! done
//! ```
//!
//! The snapshot set spans the model surface: fig01/fig02 (miss rate and
//! energy vs geometry), fig03 (cycles vs cache and line size), fig07
//! (energy vs tiling and associativity), fig10 (the whole-program MPEG
//! case study, which exercises placement and the composite sweep).

fn assert_matches_golden(actual: &str, golden: &str, name: &str) {
    if actual == golden {
        return;
    }
    for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            a,
            g,
            "{name} line {} diverged from the committed fixture (regeneration \
             command in crates/bench/tests/golden.rs)",
            i + 1
        );
    }
    panic!(
        "{name} length diverged: {} lines rendered vs {} in the fixture",
        actual.lines().count(),
        golden.lines().count()
    );
}

#[test]
fn fig01_matches_committed_fixture() {
    assert_matches_golden(
        &bench::figures::fig01(),
        include_str!("golden/fig01.txt"),
        "fig01",
    );
}

#[test]
fn fig02_matches_committed_fixture() {
    assert_matches_golden(
        &bench::figures::fig02(),
        include_str!("golden/fig02.txt"),
        "fig02",
    );
}

#[test]
fn fig03_matches_committed_fixture() {
    assert_matches_golden(
        &bench::figures::fig03(),
        include_str!("golden/fig03.txt"),
        "fig03",
    );
}

#[test]
fn fig07_matches_committed_fixture() {
    assert_matches_golden(
        &bench::figures::fig07(),
        include_str!("golden/fig07.txt"),
        "fig07",
    );
}

#[test]
fn fig10_matches_committed_fixture() {
    assert_matches_golden(
        &bench::figures::fig10(),
        include_str!("golden/fig10.txt"),
        "fig10",
    );
}
