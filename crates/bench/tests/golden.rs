//! Golden-snapshot tests for the paper-figure tables.
//!
//! The committed fixtures pin the exact rendered output of `fig01` and
//! `fig02` — any change to the simulator, energy model, placement, or
//! sweep engine that shifts a single digit fails here first. After an
//! *intentional* model change, regenerate the fixtures and review the
//! diff:
//!
//! ```text
//! cargo run --release -p bench --bin fig01 > crates/bench/tests/golden/fig01.txt
//! cargo run --release -p bench --bin fig02 > crates/bench/tests/golden/fig02.txt
//! ```

fn assert_matches_golden(actual: &str, golden: &str, name: &str) {
    if actual == golden {
        return;
    }
    for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            a,
            g,
            "{name} line {} diverged from the committed fixture (regeneration \
             command in crates/bench/tests/golden.rs)",
            i + 1
        );
    }
    panic!(
        "{name} length diverged: {} lines rendered vs {} in the fixture",
        actual.lines().count(),
        golden.lines().count()
    );
}

#[test]
fn fig01_matches_committed_fixture() {
    assert_matches_golden(
        &bench::figures::fig01(),
        include_str!("golden/fig01.txt"),
        "fig01",
    );
}

#[test]
fn fig02_matches_committed_fixture() {
    assert_matches_golden(
        &bench::figures::fig02(),
        include_str!("golden/fig02.txt"),
        "fig02",
    );
}
