//! Exploration cost, plus the ablation timings called out in DESIGN.md:
//! analytical vs simulated evaluation, Gray vs binary buses, and pruned vs
//! exhaustive sweeps.

use analysis::min_cache::MinCacheReport;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use loopir::kernels;
use memexplore::{CacheDesign, DesignSpace, Evaluator, Explorer};
use memsim::BusEncoding;

fn bench_single_evaluation(c: &mut Criterion) {
    let kernel = kernels::compress(31);
    let eval = Evaluator::default();
    let d = CacheDesign::new(64, 8, 1, 1);
    let mut group = c.benchmark_group("explore/evaluate");
    group.bench_function("simulated", |b| {
        b.iter(|| black_box(eval.evaluate(&kernel, d).energy_nj))
    });
    group.bench_function("analytical", |b| {
        b.iter(|| black_box(eval.evaluate_analytical(&kernel, d).energy_nj))
    });
    group.finish();
}

fn bench_small_space_sweep(c: &mut Criterion) {
    let kernel = kernels::dequant(31);
    let space = DesignSpace::small();
    c.bench_function("explore/small_space_sweep", |b| {
        b.iter(|| black_box(Explorer::default().explore(&kernel, &space).len()))
    });
}

fn bench_bus_encoding_ablation(c: &mut Criterion) {
    let kernel = kernels::compress(31);
    let d = CacheDesign::new(64, 8, 1, 1);
    let mut group = c.benchmark_group("explore/bus_encoding");
    for (name, enc) in [("gray", BusEncoding::Gray), ("binary", BusEncoding::Binary)] {
        let eval = Evaluator {
            bus_encoding: enc,
            ..Evaluator::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(eval.evaluate(&kernel, d).energy_nj))
        });
    }
    group.finish();
}

fn bench_pruned_vs_exhaustive(c: &mut Criterion) {
    // Pruning: skip cache sizes below the analytical minimum (§3) before
    // sweeping. The bound is cheap; the savings come from skipped designs.
    let kernel = kernels::sor(31);
    let space = DesignSpace::paper();
    let mut group = c.benchmark_group("explore/sweep");
    group.sample_size(10);
    group.bench_function("exhaustive", |b| {
        b.iter(|| black_box(Explorer::default().explore(&kernel, &space).len()))
    });
    group.bench_function("pruned_by_min_cache", |b| {
        b.iter(|| {
            let designs: Vec<CacheDesign> = space
                .designs()
                .into_iter()
                .filter(|d| {
                    let bound = MinCacheReport::analyze(&kernel, d.line as u64);
                    (d.cache_size as u64) >= bound.min_pow2_cache_bytes()
                })
                .collect();
            black_box(Explorer::default().explore_designs(&kernel, &designs).len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_evaluation,
    bench_small_space_sweep,
    bench_bus_encoding_ablation,
    bench_pruned_vs_exhaustive
);
criterion_main!(benches);
