//! Cache-simulator throughput: accesses per second across geometries,
//! replacement policies, and with/without three-C classification.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use loopir::{kernels, AccessKind, DataLayout, TraceGen};
use memsim::{BusEncoding, CacheConfig, Replacement, Simulator, TraceEvent};

fn compress_trace() -> Vec<TraceEvent> {
    let kernel = kernels::compress(31);
    let layout = DataLayout::natural(&kernel);
    TraceGen::new(&kernel, &layout)
        .filter(|a| a.kind == AccessKind::Read)
        .map(|a| TraceEvent::read(a.addr, a.size))
        .collect()
}

fn bench_geometries(c: &mut Criterion) {
    let trace = compress_trace();
    let mut group = c.benchmark_group("simulator/geometry");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (t, l, s) in [(64usize, 8usize, 1usize), (64, 8, 8), (1024, 32, 4)] {
        let cfg = CacheConfig::new(t, l, s).expect("valid geometry");
        group.bench_function(format!("C{t}L{l}SA{s}"), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(cfg);
                sim.run(trace.iter().copied());
                black_box(sim.stats().misses())
            })
        });
    }
    group.finish();
}

fn bench_replacement_policies(c: &mut Criterion) {
    let trace = compress_trace();
    let mut group = c.benchmark_group("simulator/replacement");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (name, policy) in [
        ("lru", Replacement::Lru),
        ("fifo", Replacement::Fifo),
        ("plru", Replacement::Plru),
        ("random", Replacement::Random { seed: 42 }),
    ] {
        let cfg = CacheConfig::new(128, 8, 4)
            .expect("valid geometry")
            .with_replacement(policy);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = Simulator::new(cfg);
                sim.run(trace.iter().copied());
                black_box(sim.stats().misses())
            })
        });
    }
    group.finish();
}

fn bench_classification_overhead(c: &mut Criterion) {
    let trace = compress_trace();
    let cfg = CacheConfig::new(64, 8, 1).expect("valid geometry");
    let mut group = c.benchmark_group("simulator/classification");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_options(cfg, BusEncoding::Gray, false);
            sim.run(trace.iter().copied());
            black_box(sim.stats().misses())
        })
    });
    group.bench_function("classified", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_options(cfg, BusEncoding::Gray, true);
            sim.run(trace.iter().copied());
            black_box(sim.stats().misses())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_geometries,
    bench_replacement_policies,
    bench_classification_overhead
);
criterion_main!(benches);
