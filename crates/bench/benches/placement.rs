//! Cost of the off-chip assignment search across kernels and geometries,
//! plus the static analyses it builds on.

use analysis::classes::partition_classes;
use analysis::min_cache::MinCacheReport;
use analysis::placement::optimize_layout;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use loopir::kernels;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/partition_classes");
    for kernel in kernels::all_paper_kernels() {
        group.bench_function(kernel.name.clone(), |b| {
            b.iter(|| black_box(partition_classes(&kernel, true).len()))
        });
    }
    group.finish();
}

fn bench_min_cache(c: &mut Criterion) {
    let kernel = kernels::sor(31);
    c.bench_function("analysis/min_cache_report", |b| {
        b.iter(|| black_box(MinCacheReport::analyze(&kernel, 16).min_cache_bytes()))
    });
}

fn bench_placement_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/optimize_layout");
    for (t, l) in [(64u64, 8u64), (512, 32), (1024, 64)] {
        for kernel in [kernels::compress(31), kernels::matmul(31)] {
            group.bench_function(format!("{}/C{t}L{l}", kernel.name), |b| {
                b.iter(|| {
                    black_box(
                        optimize_layout(&kernel, t, l)
                            .expect("placement succeeds")
                            .padding_bytes,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partition,
    bench_min_cache,
    bench_placement_search
);
criterion_main!(benches);
