//! One Criterion benchmark per paper figure: the cost of regenerating each
//! table/series end-to-end (the `figNN` binaries print the same outputs).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    type Fig = (&'static str, fn() -> String);
    let figs: [Fig; 10] = [
        ("fig01", bench::figures::fig01),
        ("fig02", bench::figures::fig02),
        ("fig03", bench::figures::fig03),
        ("fig04", bench::figures::fig04),
        ("fig05", bench::figures::fig05),
        ("fig06", bench::figures::fig06),
        ("fig07", bench::figures::fig07),
        ("fig08", bench::figures::fig08),
        ("fig09", bench::figures::fig09),
        ("fig10", bench::figures::fig10),
    ];
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for (name, f) in figs {
        group.bench_function(name, |b| b.iter(|| black_box(f().len())));
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
