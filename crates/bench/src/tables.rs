//! Minimal aligned-text table rendering for figure output.

use std::fmt::Write as _;

/// A text table with a title, a header row, and data rows.
///
/// # Example
///
/// ```
/// use bench::Table;
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(vec!["1".into(), "2".into()]);
/// let s = t.render();
/// assert!(s.contains("demo"));
/// assert!(s.contains("| 1 | 2 |"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:>w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats an energy value in nanojoules with thousands grouping.
pub fn fmt_nj(e: f64) -> String {
    group_thousands(e.round() as i64)
}

/// Formats a cycle count.
pub fn fmt_cycles(c: f64) -> String {
    group_thousands(c.round() as i64)
}

/// Formats a miss rate with three decimals.
pub fn fmt_mr(mr: f64) -> String {
    format!("{mr:.3}")
}

fn group_thousands(mut v: i64) -> String {
    let neg = v < 0;
    v = v.abs();
    let digits = v.to_string();
    let mut grouped = String::new();
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(ch);
    }
    if neg {
        format!("-{grouped}")
    } else {
        grouped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## t"));
        assert!(s.contains("|      name | value |"));
        assert!(s.contains("| long-name | 12345 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(fmt_nj(1234567.0), "1,234,567");
        assert_eq!(fmt_nj(999.4), "999");
        assert_eq!(fmt_cycles(1000.0), "1,000");
        assert_eq!(group_thousands(-12345), "-12,345");
        assert_eq!(group_thousands(0), "0");
    }

    #[test]
    fn miss_rate_formatting() {
        assert_eq!(fmt_mr(0.06125), "0.061");
    }
}
