//! Pareto-exploration benchmark: admissible pruning vs exhaustive sweep.
//!
//! For every paper kernel, extracts the `(cycles, energy, cache size)`
//! Pareto frontier of the full `DesignSpace::paper()` twice — once from an
//! exhaustive sweep, once with the branch-and-bound pruner — asserts the
//! frontiers are bit-identical, and writes per-kernel timings, prune
//! counts and speedups to `BENCH_pareto.json` in the current directory.
//! The pruned search additionally runs under both replay engines (fused
//! banked replay vs per-design replay) so the banked speedup is recorded
//! on the pruning path as well. Each configuration is timed over several
//! runs and the best run is reported.
//!
//! Kernels whose working set exceeds the largest swept cache (MatMult)
//! legitimately prune nothing — the interesting column is the speedup on
//! the kernels that do.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_pareto
//! ```

use loopir::kernels;
use memexplore::{DesignSpace, Engine, Explorer};
use std::time::Instant;

const RUNS: usize = 3;

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best: Option<(f64, T)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let value = f();
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, value));
        }
    }
    best.expect("runs >= 1")
}

fn main() {
    bench::reject_args("bench_pareto");
    let space = DesignSpace::paper();
    let designs = space.designs().len();
    let explorer = Explorer::default().with_engine(Engine::Fused);
    let per_design = Explorer::default().with_engine(Engine::PerDesign);

    let mut rows = Vec::new();
    let mut best_speedup: f64 = 0.0;
    for kernel in kernels::all_paper_kernels() {
        let (exhaustive_secs, (exhaustive, _)) =
            best_of(RUNS, || explorer.pareto_exhaustive(&kernel, &space));
        let (pruned_secs, (pruned, telemetry)) =
            best_of(RUNS, || explorer.pareto_pruned(&kernel, &space));
        let (pruned_pd_secs, (pruned_pd, _)) =
            best_of(RUNS, || per_design.pareto_pruned(&kernel, &space));
        assert_eq!(
            exhaustive, pruned,
            "{}: pruned frontier diverged from exhaustive",
            kernel.name
        );
        assert_eq!(
            pruned, pruned_pd,
            "{}: fused pruned frontier diverged from per-design",
            kernel.name
        );
        let speedup = exhaustive_secs / pruned_secs;
        let engine_speedup = pruned_pd_secs / pruned_secs;
        best_speedup = best_speedup.max(speedup);
        println!(
            "kernel {:10} | {} designs | simulated {:3} pruned {:3} | frontier {:3} | exhaustive {:.3} s | pruned {:.3} s | speedup {:.2}x | fused vs per-design {:.2}x",
            kernel.name,
            designs,
            telemetry.designs_evaluated,
            telemetry.designs_pruned,
            pruned.len(),
            exhaustive_secs,
            pruned_secs,
            speedup,
            engine_speedup
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"kernel\": \"{}\",\n",
                "      \"designs\": {},\n",
                "      \"designs_simulated\": {},\n",
                "      \"designs_pruned\": {},\n",
                "      \"frontier_size\": {},\n",
                "      \"frontier_identical\": true,\n",
                "      \"exhaustive_secs\": {:.6},\n",
                "      \"pruned_secs\": {:.6},\n",
                "      \"pruned_per_design_secs\": {:.6},\n",
                "      \"speedup\": {:.3},\n",
                "      \"fused_vs_per_design_speedup\": {:.3},\n",
                "      \"telemetry\": {}\n",
                "    }}"
            ),
            kernel.name,
            designs,
            telemetry.designs_evaluated,
            telemetry.designs_pruned,
            pruned.len(),
            exhaustive_secs,
            pruned_secs,
            pruned_pd_secs,
            speedup,
            engine_speedup,
            telemetry.to_json()
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"pareto_paper_space\",\n",
            "  \"designs\": {},\n",
            "  \"runs_per_engine\": {},\n",
            "  \"best_speedup\": {:.3},\n",
            "  \"kernels\": [\n{}\n  ]\n",
            "}}\n"
        ),
        designs,
        RUNS,
        best_speedup,
        rows.join(",\n")
    );
    std::fs::write("BENCH_pareto.json", &json).expect("can write BENCH_pareto.json");
    println!("best pruning speedup: {best_speedup:.2}x");
    println!("wrote BENCH_pareto.json");
}
