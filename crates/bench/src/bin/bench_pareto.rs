//! Pareto-exploration benchmark: admissible pruning vs exhaustive sweep.
//!
//! For every paper kernel, extracts the `(cycles, energy, cache size)`
//! Pareto frontier of the full `DesignSpace::paper()` twice — once from an
//! exhaustive sweep, once with the branch-and-bound pruner — asserts the
//! frontiers are bit-identical, and writes per-kernel timings, prune
//! counts and speedups to `BENCH_pareto.json` in the current directory.
//! The pruned search additionally runs under both replay engines (fused
//! banked replay vs per-design replay) and with the analytic fast path
//! disabled, so the banked speedup is recorded on the pruning path as
//! well. Every kernel is measured at each worker count in
//! `{1, num_cpus}` — rows carry a `workers` field so single-worker
//! numbers can no longer masquerade as the engine's parallel
//! throughput. Each configuration is timed over several runs and the
//! best run is reported.
//!
//! Kernels whose working set exceeds the largest swept cache (MatMult)
//! legitimately prune nothing — the interesting column is the speedup on
//! the kernels that do.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_pareto
//! ```

use loopir::kernels;
use memexplore::{DesignSpace, Engine, Explorer};
use std::time::Instant;

const RUNS: usize = 3;

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best: Option<(f64, T)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let value = f();
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, value));
        }
    }
    best.expect("runs >= 1")
}

fn main() {
    bench::reject_args("bench_pareto");
    let space = DesignSpace::paper();
    let designs = space.designs().len();
    let num_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let worker_counts: Vec<usize> = if num_cpus == 1 {
        vec![1]
    } else {
        vec![1, num_cpus]
    };

    let mut rows = Vec::new();
    let mut best_speedup: f64 = 0.0;
    for kernel in kernels::all_paper_kernels() {
        for &workers in &worker_counts {
            let explorer = Explorer::default()
                .with_engine(Engine::Fused)
                .with_workers(workers);
            let no_analytic = Explorer::default()
                .with_engine(Engine::Fused)
                .with_workers(workers)
                .with_analytic(false);
            let per_design = Explorer::default()
                .with_engine(Engine::PerDesign)
                .with_workers(workers);

            let (exhaustive_secs, (exhaustive, _)) =
                best_of(RUNS, || explorer.pareto_exhaustive(&kernel, &space));
            let (pruned_secs, (pruned, telemetry)) =
                best_of(RUNS, || explorer.pareto_pruned(&kernel, &space));
            let (pruned_na_secs, (pruned_na, _)) =
                best_of(RUNS, || no_analytic.pareto_pruned(&kernel, &space));
            let (pruned_pd_secs, (pruned_pd, _)) =
                best_of(RUNS, || per_design.pareto_pruned(&kernel, &space));
            assert_eq!(
                exhaustive, pruned,
                "{}: pruned frontier diverged from exhaustive",
                kernel.name
            );
            assert_eq!(
                pruned, pruned_na,
                "{}: analytic frontier diverged from plain replay",
                kernel.name
            );
            assert_eq!(
                pruned, pruned_pd,
                "{}: fused pruned frontier diverged from per-design",
                kernel.name
            );
            let speedup = exhaustive_secs / pruned_secs;
            let engine_speedup = pruned_pd_secs / pruned_secs;
            best_speedup = best_speedup.max(speedup);
            println!(
                "kernel {:10} | {} designs | {} worker(s) | simulated {:3} pruned {:3} | frontier {:3} | exhaustive {:.3} s | pruned {:.3} s | speedup {:.2}x | fused vs per-design {:.2}x",
                kernel.name,
                designs,
                workers,
                telemetry.designs_evaluated,
                telemetry.designs_pruned,
                pruned.len(),
                exhaustive_secs,
                pruned_secs,
                speedup,
                engine_speedup
            );
            rows.push(format!(
                concat!(
                    "    {{\n",
                    "      \"kernel\": \"{}\",\n",
                    "      \"workers\": {},\n",
                    "      \"designs\": {},\n",
                    "      \"designs_simulated\": {},\n",
                    "      \"designs_pruned\": {},\n",
                    "      \"frontier_size\": {},\n",
                    "      \"frontier_identical\": true,\n",
                    "      \"exhaustive_secs\": {:.6},\n",
                    "      \"pruned_secs\": {:.6},\n",
                    "      \"pruned_no_analytic_secs\": {:.6},\n",
                    "      \"pruned_per_design_secs\": {:.6},\n",
                    "      \"speedup\": {:.3},\n",
                    "      \"fused_vs_per_design_speedup\": {:.3},\n",
                    "      \"telemetry\": {}\n",
                    "    }}"
                ),
                kernel.name,
                workers,
                designs,
                telemetry.designs_evaluated,
                telemetry.designs_pruned,
                pruned.len(),
                exhaustive_secs,
                pruned_secs,
                pruned_na_secs,
                pruned_pd_secs,
                speedup,
                engine_speedup,
                telemetry.to_json()
            ));
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"pareto_paper_space\",\n",
            "  \"designs\": {},\n",
            "  \"runs_per_engine\": {},\n",
            "  \"num_cpus\": {},\n",
            "  \"best_speedup\": {:.3},\n",
            "  \"kernels\": [\n{}\n  ]\n",
            "}}\n"
        ),
        designs,
        RUNS,
        num_cpus,
        best_speedup,
        rows.join(",\n")
    );
    std::fs::write("BENCH_pareto.json", &json).expect("can write BENCH_pareto.json");
    println!("best pruning speedup: {best_speedup:.2}x");
    println!("wrote BENCH_pareto.json");
}
