//! Prints the paper's Figure 05 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig05());
}
