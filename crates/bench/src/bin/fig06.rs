//! Prints the paper's Figure 06 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig06());
}
