//! Prints the paper's Figure 10 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig10());
}
