//! Prints the paper's Figure 01 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig01());
}
