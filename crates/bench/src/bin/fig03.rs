//! Prints the paper's Figure 03 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig03());
}
