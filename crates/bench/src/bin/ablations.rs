//! Ablation studies for the design choices called out in DESIGN.md §4:
//! replacement policy, bus encoding, energy-model choice, and analytical vs
//! simulated miss rates.

use analysis::missrate::analytical_miss_rate;
use bench::tables::{fmt_mr, fmt_nj, Table};
use energy::{DacEnergyModel, KambleGhoseModel, SramPart};
use loopir::{kernels, AccessKind, DataLayout, TraceGen};
use memexplore::{select, CacheDesign, Evaluator, Explorer};
use memsim::{BusEncoding, CacheConfig, Replacement, Simulator, TraceEvent};

fn main() {
    replacement_policies();
    bus_encoding();
    energy_model_choice();
    analytical_vs_simulated();
    line_buffer();
    write_path();
}

/// Miss rate per replacement policy at a 4-way cache (the paper assumes
/// LRU; embedded parts often ship PLRU or random).
fn replacement_policies() {
    let mut table = Table::new(
        "miss rate by replacement policy (C128 L8 SA4, natural layout)",
        &["kernel", "LRU", "FIFO", "PLRU", "random"],
    );
    for kernel in kernels::all_paper_kernels() {
        let layout = DataLayout::natural(&kernel);
        let mut row = vec![kernel.name.clone()];
        for policy in [
            Replacement::Lru,
            Replacement::Fifo,
            Replacement::Plru,
            Replacement::Random { seed: 7 },
        ] {
            let cfg = CacheConfig::new(128, 8, 4)
                .expect("valid geometry")
                .with_replacement(policy);
            let events = TraceGen::new(&kernel, &layout)
                .filter(|a| a.kind == AccessKind::Read)
                .map(|a| TraceEvent::read(a.addr, a.size));
            row.push(fmt_mr(
                Simulator::simulate(cfg, events).stats.read_miss_rate(),
            ));
        }
        table.row(row);
    }
    println!("{}", table.render());
}

/// Address-bus switching under Gray vs binary encoding and its energy
/// impact through `E_dec`/`E_io`.
fn bus_encoding() {
    let mut table = Table::new(
        "avg address-bus switches and energy, Gray vs binary (C64 L8)",
        &[
            "kernel",
            "gray add_bs",
            "binary add_bs",
            "gray nJ",
            "binary nJ",
        ],
    );
    for kernel in kernels::all_paper_kernels() {
        let layout = DataLayout::natural(&kernel);
        let model = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let mut cells = vec![kernel.name.clone()];
        let mut energies = Vec::new();
        for enc in [BusEncoding::Gray, BusEncoding::Binary] {
            let cfg = CacheConfig::new(64, 8, 1).expect("valid geometry");
            let mut sim = Simulator::with_options(cfg, enc, false);
            sim.run(
                TraceGen::new(&kernel, &layout)
                    .filter(|a| a.kind == AccessKind::Read)
                    .map(|a| TraceEvent::read(a.addr, a.size)),
            );
            let report = sim.into_report();
            cells.push(format!("{:.2}", report.cpu_bus.avg_switches()));
            energies.push(model.trace_energy_nj(&report));
        }
        cells.push(fmt_nj(energies[0]));
        cells.push(fmt_nj(energies[1]));
        table.row(cells);
    }
    println!("{}", table.render());
}

/// Does the simplified DAC'99 energy model pick the same minimum-energy
/// configuration as the Kamble–Ghose-style model?
fn energy_model_choice() {
    let mut table = Table::new(
        "minimum-energy design under each energy model (size-line grid)",
        &["kernel", "DAC'99 model", "Kamble-Ghose model", "agree"],
    );
    let kg = KambleGhoseModel::new(SramPart::cy7c_2mbit());
    for kernel in kernels::all_paper_kernels() {
        let designs: Vec<CacheDesign> = [16usize, 32, 64, 128, 256, 512]
            .iter()
            .flat_map(|&t| {
                [4usize, 8, 16, 32]
                    .iter()
                    .filter(move |&&l| l <= t && t / l >= 4)
                    .map(move |&l| CacheDesign::new(t, l, 1, 1))
            })
            .collect();
        let records = Explorer::default().explore_designs(&kernel, &designs);
        let dac_best = select::min_energy(&records).expect("non-empty").design;
        // Re-rank the same simulations under the Kamble–Ghose model.
        let kg_best = records
            .iter()
            .min_by(|a, b| {
                let ea = kg_energy(&kg, a);
                let eb = kg_energy(&kg, b);
                ea.partial_cmp(&eb).expect("finite")
            })
            .expect("non-empty")
            .design;
        table.row(vec![
            kernel.name.clone(),
            dac_best.to_string(),
            kg_best.to_string(),
            (dac_best == kg_best).to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn kg_energy(kg: &KambleGhoseModel, r: &memexplore::Record) -> f64 {
    let cfg = r.design.cache_config().expect("valid design");
    let trip = r.trip_count as f64;
    trip * (1.0 - r.miss_rate) * kg.hit_energy_nj(&cfg)
        + trip * r.miss_rate * kg.miss_energy_nj(&cfg)
}

/// Energy with and without a single-entry line buffer in front of the
/// cache (Su–Despain block buffering).
fn line_buffer() {
    let mut table = Table::new(
        "read energy with a line buffer (C64 L8, optimized layout)",
        &[
            "kernel",
            "buffer hit share",
            "plain nJ",
            "buffered nJ",
            "saving",
        ],
    );
    let model = DacEnergyModel::new(SramPart::cy7c_2mbit());
    for kernel in kernels::all_paper_kernels() {
        let layout = analysis::placement::optimize_layout(&kernel, 64, 8)
            .expect("placement succeeds")
            .layout;
        let cfg = CacheConfig::new(64, 8, 1).expect("valid geometry");
        let mut sim = Simulator::new(cfg).with_line_buffer();
        sim.run(
            TraceGen::new(&kernel, &layout)
                .filter(|a| a.kind == AccessKind::Read)
                .map(|a| TraceEvent::read(a.addr, a.size)),
        );
        let report = sim.into_report();
        let plain = model.trace_energy_nj(&report);
        let buffered = model.trace_energy_with_buffer_nj(&report);
        table.row(vec![
            kernel.name.clone(),
            format!(
                "{:.0}%",
                100.0 * report.stats.buffer_hits as f64 / report.stats.reads as f64
            ),
            fmt_nj(plain),
            fmt_nj(buffered),
            format!("{:.1}%", 100.0 * (1.0 - buffered / plain)),
        ]);
    }
    println!("{}", table.render());
}

/// Read-only energy (the paper's model) vs the write-path extension.
fn write_path() {
    let mut table = Table::new(
        "read-only vs write-inclusive energy (C64 L8, natural layout)",
        &["kernel", "reads-only nJ", "with writes nJ", "writebacks"],
    );
    let model = DacEnergyModel::new(SramPart::cy7c_2mbit());
    for kernel in kernels::all_paper_kernels() {
        let layout = DataLayout::natural(&kernel);
        let cfg = CacheConfig::new(64, 8, 1).expect("valid geometry");
        let mut sim = Simulator::new(cfg);
        sim.run(TraceGen::new(&kernel, &layout).map(|a| TraceEvent {
            addr: a.addr,
            size: a.size,
            is_write: a.kind == AccessKind::Write,
        }));
        let report = sim.into_report();
        table.row(vec![
            kernel.name.clone(),
            fmt_nj(model.trace_energy_nj(&report)),
            fmt_nj(model.trace_energy_with_writes_nj(&report)),
            report.stats.writebacks.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// The paper's closed-form miss rates vs exact trace-driven simulation.
fn analytical_vs_simulated() {
    let mut table = Table::new(
        "analytical vs simulated miss rate (optimized layout, L8)",
        &["kernel", "analytical", "sim C64", "sim C256", "sim C1024"],
    );
    let eval = Evaluator::default();
    for kernel in kernels::all_paper_kernels() {
        let mut row = vec![
            kernel.name.clone(),
            fmt_mr(analytical_miss_rate(&kernel, 8)),
        ];
        for t in [64usize, 256, 1024] {
            row.push(fmt_mr(
                eval.evaluate(&kernel, CacheDesign::new(t, 8, 1, 1))
                    .miss_rate,
            ));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "The analytical model ignores capacity: simulation converges to it\n\
         as the cache grows, but exceeds it at small caches — which is why\n\
         the exact-simulation energy optimum sits at a larger cache than the\n\
         paper's C16L4 (see fig04)."
    );
}
