//! Certified-search benchmark: bound-guided best-first search vs the
//! exhaustive sweep.
//!
//! Two halves, both written to `BENCH_search.json`:
//!
//! * **Paper grid** — for every paper kernel and both single objectives,
//!   run the exhaustive sweep + min-select and the gap-0 search, assert
//!   the incumbents are bit-identical, and record timings and prune
//!   counts.
//! * **Big grid** — on `DesignSpace::expansive()` (over a million
//!   candidates, including the replacement/write-policy axes) run the
//!   search alone at a 1% gap target. The exhaustive baseline is
//!   *extrapolated* from the paper grid's measured per-design cost; the
//!   run asserts the certified gap stays ≤ 1% and the search beats the
//!   extrapolated sweep by ≥ 10×.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_search
//! ```

use loopir::kernels;
use memexplore::{select, DesignSpace, Explorer, Objective, SearchOptions};
use std::time::Instant;

const RUNS: usize = 3;
const BIG_GAP: f64 = 0.01;
const BIG_SPEEDUP_FLOOR: f64 = 10.0;

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best: Option<(f64, T)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let value = f();
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, value));
        }
    }
    best.expect("runs >= 1")
}

fn main() {
    bench::reject_args("bench_search");
    let space = DesignSpace::paper();
    let designs = space.design_count();
    let explorer = Explorer::default();

    let mut rows = Vec::new();
    let mut secs_per_design: f64 = f64::INFINITY;
    for kernel in kernels::all_paper_kernels() {
        let (exhaustive_secs, records) = best_of(RUNS, || explorer.explore(&kernel, &space));
        // The cheapest measured sweep rate extrapolates most conservatively
        // (it understates the exhaustive cost of the big grid).
        secs_per_design = secs_per_design.min(exhaustive_secs / designs as f64);
        for objective in [Objective::Energy, Objective::Cycles] {
            let options = SearchOptions {
                objective,
                ..Default::default()
            };
            let (search_secs, out) = best_of(RUNS, || explorer.search(&kernel, &space, &options));
            let oracle = match objective {
                Objective::Energy => select::min_energy(&records),
                _ => select::min_cycles(&records),
            }
            .expect("non-empty grid");
            assert!(out.complete, "{}/{objective}: not certified", kernel.name);
            assert_eq!(
                out.incumbent.as_ref().expect("complete => incumbent"),
                oracle,
                "{}/{objective}: search diverged from the sweep minimum",
                kernel.name
            );
            let speedup = exhaustive_secs / search_secs;
            println!(
                "kernel {:10} | {objective:7} | {designs} designs | simulated {:3} pruned {:3} | exhaustive {:.3} s | search {:.3} s | speedup {:.2}x",
                kernel.name,
                out.telemetry.designs_evaluated,
                out.telemetry.designs_pruned,
                exhaustive_secs,
                search_secs,
                speedup,
            );
            rows.push(format!(
                concat!(
                    "      {{\n",
                    "        \"kernel\": \"{}\",\n",
                    "        \"objective\": \"{}\",\n",
                    "        \"designs\": {},\n",
                    "        \"designs_simulated\": {},\n",
                    "        \"designs_pruned\": {},\n",
                    "        \"expansions\": {},\n",
                    "        \"incumbent_identical\": true,\n",
                    "        \"certified_gap\": {:.6},\n",
                    "        \"exhaustive_secs\": {:.6},\n",
                    "        \"search_secs\": {:.6},\n",
                    "        \"speedup\": {:.3}\n",
                    "      }}"
                ),
                kernel.name,
                objective,
                designs,
                out.telemetry.designs_evaluated,
                out.telemetry.designs_pruned,
                out.expansions,
                out.gap(),
                exhaustive_secs,
                search_secs,
                speedup,
            ));
        }
    }

    // Big grid: a million-plus candidates, search only.
    let big_space = DesignSpace::expansive();
    let big_designs = big_space.design_count();
    assert!(
        big_designs >= 1_000_000,
        "expansive grid shrank below a million designs ({big_designs})"
    );
    let kernel = kernels::compress(31);
    let options = SearchOptions {
        objective: Objective::Energy,
        gap: BIG_GAP,
        ..Default::default()
    };
    let start = Instant::now();
    let out = explorer.search(&kernel, &big_space, &options);
    let big_secs = start.elapsed().as_secs_f64();
    let extrapolated = secs_per_design * big_designs as f64;
    let big_speedup = extrapolated / big_secs;
    assert!(
        out.relative_gap() <= BIG_GAP + 1e-12,
        "big grid: certified relative gap {} above the {BIG_GAP} target",
        out.relative_gap()
    );
    assert!(
        big_speedup >= BIG_SPEEDUP_FLOOR,
        "big grid: search {big_secs:.1}s vs extrapolated exhaustive {extrapolated:.1}s is only {big_speedup:.1}x (need {BIG_SPEEDUP_FLOOR}x)"
    );
    println!(
        "big grid {} | {big_designs} designs | simulated {} pruned {} | gap {:.4} ({:.2}%) | search {:.3} s | extrapolated exhaustive {:.1} s | {:.0}x",
        kernel.name,
        out.telemetry.designs_evaluated,
        out.telemetry.designs_pruned,
        out.gap(),
        out.relative_gap() * 100.0,
        big_secs,
        extrapolated,
        big_speedup,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"certified_search\",\n",
            "  \"runs_per_config\": {},\n",
            "  \"paper_grid\": {{\n",
            "    \"designs\": {},\n",
            "    \"kernels\": [\n{}\n    ]\n",
            "  }},\n",
            "  \"big_grid\": {{\n",
            "    \"kernel\": \"{}\",\n",
            "    \"designs\": {},\n",
            "    \"objective\": \"energy\",\n",
            "    \"gap_target\": {:.3},\n",
            "    \"certified_relative_gap\": {:.6},\n",
            "    \"complete\": {},\n",
            "    \"designs_simulated\": {},\n",
            "    \"designs_pruned\": {},\n",
            "    \"expansions\": {},\n",
            "    \"beam_discarded\": {},\n",
            "    \"search_secs\": {:.3},\n",
            "    \"extrapolated_exhaustive_secs\": {:.3},\n",
            "    \"speedup_vs_extrapolated\": {:.1},\n",
            "    \"speedup_floor\": {:.1}\n",
            "  }}\n",
            "}}\n"
        ),
        RUNS,
        designs,
        rows.join(",\n"),
        kernel.name,
        big_designs,
        BIG_GAP,
        out.relative_gap(),
        out.complete,
        out.telemetry.designs_evaluated,
        out.telemetry.designs_pruned,
        out.expansions,
        out.beam_discarded,
        big_secs,
        extrapolated,
        big_speedup,
        BIG_SPEEDUP_FLOOR,
    );
    std::fs::write("BENCH_search.json", &json).expect("can write BENCH_search.json");
    println!("wrote BENCH_search.json");
}
