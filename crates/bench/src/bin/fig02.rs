//! Prints the paper's Figure 02 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig02());
}
