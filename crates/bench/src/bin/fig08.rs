//! Prints the paper's Figure 08 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig08());
}
