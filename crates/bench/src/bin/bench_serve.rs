//! Load harness for `memx serve`: replays a mixed stream of exploration
//! jobs against a live in-process daemon and reports sustained
//! throughput, client-observed latency percentiles, and the cache-hit
//! ratio. The job pool deliberately contains many duplicates (the whole
//! point of the content-addressed cache), and every repeated response is
//! checked byte-identical to the first one for its job.
//!
//! Results are written to `BENCH_serve.json` in the current directory.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_serve
//! ```

use memexplore::obs::{push_json_str, LatencyHistogram};
use memx::{http_request, ServeConfig, Server};
use std::sync::Mutex;
use std::time::Instant;

const CLIENTS: usize = 32;
const JOBS_PER_CLIENT: usize = 32;
const KERNELS: &[&str] = &["compress", "matmul", "pde", "sor", "dequant"];
const COMMANDS: &[&str] = &["explore", "pareto", "search"];
const PARTS: &[&str] = &["cy7c", "lp2m"];

/// The distinct job pool: every paper kernel x every job kind x two
/// SRAM parts. 30 unique jobs, replayed 1024 times in total.
fn job_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for name in KERNELS {
        let path = format!(
            "{}/../../examples/kernels/{name}.mx",
            env!("CARGO_MANIFEST_DIR")
        );
        let source =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        for command in COMMANDS {
            for part in PARTS {
                let mut body = String::from("{\"command\":");
                push_json_str(&mut body, command);
                body.push_str(",\"kernel\":");
                push_json_str(&mut body, &source);
                body.push_str(",\"part\":");
                push_json_str(&mut body, part);
                body.push('}');
                pool.push(body);
            }
        }
    }
    pool
}

fn main() {
    bench::reject_args("bench_serve");
    let server = Server::start(ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let pool = job_pool();
    let latency = LatencyHistogram::new();
    // First-seen response bytes per pool index, for byte-identity checks.
    let first_seen: Vec<Mutex<Option<Vec<u8>>>> =
        (0..pool.len()).map(|_| Mutex::new(None)).collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let (addr, pool, latency, first_seen) = (&addr, &pool, &latency, &first_seen);
            scope.spawn(move || {
                for i in 0..JOBS_PER_CLIENT {
                    // Deterministic mix: stride 13 is coprime to the pool
                    // size, so every client cycles through all 30 jobs.
                    let job = (t * 7 + i * 13) % pool.len();
                    let sent = Instant::now();
                    let response = http_request(addr, "POST", "/v1/jobs", pool[job].as_bytes())
                        .expect("daemon reachable");
                    latency.record(sent.elapsed());
                    assert_eq!(response.code, 200, "job {job} failed");
                    let mut slot = first_seen[job].lock().unwrap();
                    match &*slot {
                        None => *slot = Some(response.body),
                        Some(first) => assert_eq!(
                            first, &response.body,
                            "job {job}: response bytes diverged across replays"
                        ),
                    }
                }
            });
        }
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let total_jobs = CLIENTS * JOBS_PER_CLIENT;
    let stats = server.cache().stats();
    let summary = latency.summary();
    let served = stats.hits + stats.misses + stats.joins;
    assert_eq!(served, total_jobs as u64, "lost requests: {stats:?}");
    assert_eq!(
        stats.misses,
        pool.len() as u64,
        "every distinct job misses once"
    );
    let hit_ratio = (stats.hits + stats.joins) as f64 / served as f64;
    let throughput = total_jobs as f64 / wall_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"serve_mixed_load\",\n",
            "  \"clients\": {},\n",
            "  \"total_jobs\": {},\n",
            "  \"distinct_jobs\": {},\n",
            "  \"wall_secs\": {:.6},\n",
            "  \"throughput_jobs_per_sec\": {:.3},\n",
            "  \"latency_us\": {},\n",
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"joins\": {}}},\n",
            "  \"hit_ratio\": {:.4},\n",
            "  \"responses_byte_identical\": true\n",
            "}}\n"
        ),
        CLIENTS,
        total_jobs,
        pool.len(),
        wall_secs,
        throughput,
        summary.to_json(),
        stats.hits,
        stats.misses,
        stats.joins,
        hit_ratio,
    );
    std::fs::write("BENCH_serve.json", &json).expect("can write BENCH_serve.json");

    println!(
        "{total_jobs} jobs ({} distinct) over {CLIENTS} clients in {wall_secs:.3} s | {throughput:.1} jobs/s",
        pool.len()
    );
    println!(
        "latency p50 {:?} | p95 {:?} | p99 {:?} (n = {})",
        summary.p50(),
        summary.p95(),
        summary.p99(),
        summary.count
    );
    println!(
        "cache: {} hits / {} misses / {} joins | hit ratio {:.1}%",
        stats.hits,
        stats.misses,
        stats.joins,
        hit_ratio * 100.0
    );
    println!("wrote BENCH_serve.json");

    server.request_shutdown();
    server.join();
}
