use analysis::placement::optimize_layout;
use loopir::*;
use memsim::{CacheConfig, Simulator, TraceEvent};
fn main() {
    let a0 = ArrayDecl::new("a0", &[5, 8], 4);
    let a1 = ArrayDecl::new("a1", &[5, 8], 4);
    let nest = LoopNest {
        loops: vec![Loop::new(1, 3), Loop::new(1, 6)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0) + 1, AffineExpr::var(1)]),
            ArrayRef::read(ArrayId(1), vec![AffineExpr::var(0) - 1, AffineExpr::var(1)]),
            ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0), AffineExpr::var(1)]),
        ],
    };
    let k = Kernel::new("cex", vec![a0, a1], nest);
    let r = optimize_layout(&k, 128, 8).unwrap();
    for i in 0..2 {
        let p = r.layout.placement(ArrayId(i));
        println!("a{i}: base={} pitch={}", p.base, p.row_pitch);
    }
    println!(
        "cf={} leaders={:?} colliding={}",
        r.conflict_free, r.leader_lines, r.colliding_classes
    );
    let cfg = CacheConfig::new(128, 8, 1).unwrap();
    let ev: Vec<_> = TraceGen::new(&k, &r.layout)
        .filter(|a| a.kind == AccessKind::Read)
        .map(|a| TraceEvent::read(a.addr, a.size))
        .collect();
    // print addresses with line numbers for first rows
    for (n, e) in ev.iter().enumerate().take(24) {
        println!("{n}: addr={} line={}", e.addr, (e.addr / 8) % 16);
    }
    let rep = Simulator::simulate_classified(cfg, ev);
    println!(
        "mr={:.3} {:?}",
        rep.stats.read_miss_rate(),
        rep.miss_classes
    );
}
