//! Shard-coordinator benchmark: one local worker vs N, with the merge
//! overhead broken out.
//!
//! For each paper kernel this partitions the full `DesignSpace::paper()`
//! grid into shards and drives them through the same coordinator
//! (`run_sharded` + `ThreadExecutor`) that backs `memx sweep
//! --distributed N`, at 1, 2, and `available_parallelism` worker slots.
//! Each configuration is checked bit-identical to the single-process
//! sweep, and the coordinator's own merge time (dedupe + slot fill) is
//! reported separately from the wall clock, so the distribution tax is
//! visible. Results go to `BENCH_shard.json` in the current directory;
//! each configuration is timed over several runs and the best run is
//! kept.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_shard
//! ```

use loopir::kernels;
use memexplore::shard::ShardFn;
use memexplore::{
    partition, run_sharded, CacheDesign, CoordinatorOptions, DesignSpace, Engine, Explorer, Record,
    ShardOutput, ShardSpec, ThreadExecutor,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const RUNS: usize = 3;
/// Shards per worker slot — enough that the dispatch queue (not just the
/// initial fan-out) is exercised, matching the `memx sweep` default.
const SHARDS_PER_SLOT: usize = 2;

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best: Option<(f64, T)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let value = f();
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, value));
        }
    }
    best.expect("runs >= 1")
}

/// The worker body `memx worker` runs, minus the process boundary: a
/// serial fused sweep over the shard's slice of the grid.
fn shard_worker(kernel: loopir::Kernel, designs: Vec<CacheDesign>) -> Arc<ShardFn> {
    Arc::new(move |spec: &ShardSpec| {
        let records = Explorer::default()
            .with_engine(Engine::Fused)
            .with_workers(1)
            .explore_designs(&kernel, &designs[spec.start..spec.end]);
        Ok(ShardOutput {
            sweep_id: spec.sweep_id,
            entries: records.into_iter().enumerate().collect(),
            quarantined: Vec::new(),
        })
    })
}

struct Config {
    slots: usize,
    shards: usize,
    secs: f64,
    merge_secs: f64,
    identical: bool,
}

struct KernelResult {
    kernel: String,
    designs: usize,
    single_secs: f64,
    configs: Vec<Config>,
}

fn bench_kernel(kernel: &loopir::Kernel, designs: &[CacheDesign]) -> KernelResult {
    // Oracle: the undistributed sweep every configuration must reproduce.
    let (single_secs, baseline) = best_of(RUNS, || {
        Explorer::default()
            .with_engine(Engine::Fused)
            .explore_designs(kernel, designs)
    });

    let cores = std::thread::available_parallelism().map_or(4, usize::from);
    let mut slot_counts = vec![1, 2, cores];
    slot_counts.sort_unstable();
    slot_counts.dedup();

    let worker = shard_worker(kernel.clone(), designs.to_vec());
    let configs = slot_counts
        .into_iter()
        .map(|slots| {
            let shards = (slots * SHARDS_PER_SLOT).max(1);
            let specs = partition(designs.len(), shards);
            let executor = ThreadExecutor::new(slots, Arc::clone(&worker));
            let options = CoordinatorOptions {
                poll: Duration::from_micros(200),
                ..CoordinatorOptions::default()
            };
            let local = |spec: &ShardSpec| worker(spec);
            let (secs, outcome) = best_of(RUNS, || {
                run_sharded(&executor, &specs, designs, &local, &options, None)
                    .expect("fault-free sweep completes")
            });
            let merged: Vec<Record> = outcome.completed_records();
            Config {
                slots,
                shards,
                secs,
                merge_secs: outcome.stats.merge_time.as_secs_f64(),
                identical: merged == baseline,
            }
        })
        .collect();

    KernelResult {
        kernel: kernel.name.clone(),
        designs: designs.len(),
        single_secs,
        configs,
    }
}

fn main() {
    bench::reject_args("bench_shard");
    let designs = DesignSpace::paper().designs();

    let results: Vec<KernelResult> = kernels::all_paper_kernels()
        .iter()
        .map(|k| bench_kernel(k, &designs))
        .collect();

    for r in &results {
        println!(
            "kernel {} | {} designs | single-process {:.3} s",
            r.kernel, r.designs, r.single_secs
        );
        for c in &r.configs {
            println!(
                "  {} worker(s), {} shards | {:.3} s | merge {:.6} s | speedup {:.2}x | identical {}",
                c.slots,
                c.shards,
                c.secs,
                c.merge_secs,
                r.single_secs / c.secs,
                c.identical
            );
            assert!(c.identical, "{}: sharded merge diverged", r.kernel);
        }
    }

    let json = render_json(&results);
    std::fs::write("BENCH_shard.json", &json).expect("can write BENCH_shard.json");
    println!("wrote BENCH_shard.json");
}

fn render_json(results: &[KernelResult]) -> String {
    let mut kernels_json = String::new();
    for (i, r) in results.iter().enumerate() {
        let mut configs_json = String::new();
        for (j, c) in r.configs.iter().enumerate() {
            let _ = write!(
                configs_json,
                concat!(
                    "        {{\n",
                    "          \"workers\": {},\n",
                    "          \"shards\": {},\n",
                    "          \"secs\": {:.6},\n",
                    "          \"merge_secs\": {:.6},\n",
                    "          \"speedup_vs_single\": {:.3},\n",
                    "          \"records_identical\": {}\n",
                    "        }}{}"
                ),
                c.slots,
                c.shards,
                c.secs,
                c.merge_secs,
                r.single_secs / c.secs,
                c.identical,
                if j + 1 < r.configs.len() { ",\n" } else { "\n" }
            );
        }
        let _ = write!(
            kernels_json,
            concat!(
                "    {{\n",
                "      \"kernel\": \"{}\",\n",
                "      \"designs\": {},\n",
                "      \"single_process_secs\": {:.6},\n",
                "      \"configs\": [\n{}      ]\n",
                "    }}{}"
            ),
            r.kernel,
            r.designs,
            r.single_secs,
            configs_json,
            if i + 1 < results.len() { ",\n" } else { "\n" }
        );
    }
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"shard_coordinator\",\n",
            "  \"runs_per_config\": {},\n",
            "  \"shards_per_worker\": {},\n",
            "  \"kernels\": [\n{}  ]\n",
            "}}\n"
        ),
        RUNS, SHARDS_PER_SLOT, kernels_json,
    )
}
