//! Prints every figure reproduction in order — the source of EXPERIMENTS.md.
fn main() {
    type Fig = (&'static str, fn() -> String);
    let figs: [Fig; 10] = [
        ("fig01", bench::figures::fig01),
        ("fig02", bench::figures::fig02),
        ("fig03", bench::figures::fig03),
        ("fig04", bench::figures::fig04),
        ("fig05", bench::figures::fig05),
        ("fig06", bench::figures::fig06),
        ("fig07", bench::figures::fig07),
        ("fig08", bench::figures::fig08),
        ("fig09", bench::figures::fig09),
        ("fig10", bench::figures::fig10),
    ];
    for (name, f) in figs {
        eprintln!("[all_figures] running {name} ...");
        println!("{}", f());
    }
}
