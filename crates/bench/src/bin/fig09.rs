//! Prints the paper's Figure 09 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig09());
}
