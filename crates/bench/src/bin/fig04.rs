//! Prints the paper's Figure 04 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig04());
}
