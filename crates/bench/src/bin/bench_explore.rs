//! Sweep-engine benchmark: fused one-pass replay vs per-design replay
//! (plus the historical seed-engine comparison on `compress` and the
//! scalar-replay baseline on `matmul`).
//!
//! For each of the paper's five kernels this runs the full
//! `DesignSpace::paper()` sweep with the fused engine (analytic fast
//! path on and off) and the per-design engine, checks all three record
//! streams are bit-identical, and reports the replay-phase speedup
//! (`simulate_time` per-design / fused) alongside the wall-clock
//! speedup. Every kernel is measured at each worker count in
//! `{1, num_cpus}` — published rows carry a `workers` field so
//! single-worker numbers can no longer masquerade as the engine's
//! parallel throughput. On `compress` it additionally times the original
//! seed engine, and on `matmul` the pre-bulk scalar replay path
//! (`Evaluator::scalar_replay`), which is PR 3's fused baseline — the
//! `replay_phase_speedup` of that row is the number the bulk-lane
//! refactor is pinned on. Everything is written to `BENCH_explore.json`
//! in the current directory. Each configuration is timed over several
//! runs and the best run is reported, which filters scheduler noise
//! without external tooling.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_explore
//! ```

use bench::seed_engine::seed_explore_designs;
use loopir::kernels;
use memexplore::{DesignSpace, Engine, Evaluator, Explorer, Record, SweepTelemetry};
use std::fmt::Write as _;
use std::time::Instant;

const RUNS: usize = 3;

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best: Option<(f64, T)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let value = f();
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, value));
        }
    }
    best.expect("runs >= 1")
}

struct KernelResult {
    kernel: String,
    workers: usize,
    designs: usize,
    fused_secs: f64,
    no_analytic_secs: f64,
    per_design_secs: f64,
    replay_speedup: f64,
    total_speedup: f64,
    /// Fused ≡ fused-without-analytic ≡ per-design, bitwise.
    identical: bool,
    telemetry: SweepTelemetry,
}

fn bench_kernel(
    kernel: &loopir::Kernel,
    designs: &[memexplore::CacheDesign],
    workers: usize,
) -> KernelResult {
    let fused = Explorer::default()
        .with_engine(Engine::Fused)
        .with_workers(workers);
    let no_analytic = Explorer::default()
        .with_engine(Engine::Fused)
        .with_workers(workers)
        .with_analytic(false);
    let per_design = Explorer::default()
        .with_engine(Engine::PerDesign)
        .with_workers(workers);

    let (fused_secs, (fused_records, fused_t)) = best_of(RUNS, || {
        fused.explore_designs_with_telemetry(kernel, designs)
    });
    let (na_secs, (na_records, _)) = best_of(RUNS, || {
        no_analytic.explore_designs_with_telemetry(kernel, designs)
    });
    let (per_secs, (per_records, per_t)) = best_of(RUNS, || {
        per_design.explore_designs_with_telemetry(kernel, designs)
    });

    KernelResult {
        kernel: kernel.name.clone(),
        workers,
        designs: designs.len(),
        fused_secs,
        no_analytic_secs: na_secs,
        per_design_secs: per_secs,
        replay_speedup: per_t.simulate_time.as_secs_f64() / fused_t.simulate_time.as_secs_f64(),
        total_speedup: per_secs / fused_secs,
        identical: fused_records == per_records && fused_records == na_records,
        telemetry: fused_t,
    }
}

/// PR 3's fused baseline on the heaviest kernel: the same fused engine
/// with `Evaluator::scalar_replay`, which disables the bulk-lane SWAR
/// path (and, through it, the analytic fast path). The replay-phase
/// ratio of this row against the current engine is the bulk-replay
/// speedup the refactor is pinned on.
struct ScalarBaseline {
    kernel: String,
    scalar_secs: f64,
    scalar_simulate_secs: f64,
    bulk_simulate_secs: f64,
    replay_speedup: f64,
    identical: bool,
}

fn bench_scalar_baseline(
    kernel: &loopir::Kernel,
    designs: &[memexplore::CacheDesign],
) -> ScalarBaseline {
    let evaluator = Evaluator {
        scalar_replay: true,
        ..Evaluator::default()
    };
    let scalar = Explorer::new(evaluator).with_engine(Engine::Fused);
    let bulk = Explorer::default().with_engine(Engine::Fused);

    let (scalar_secs, (scalar_records, scalar_t)) = best_of(RUNS, || {
        scalar.explore_designs_with_telemetry(kernel, designs)
    });
    let (_, (bulk_records, bulk_t)) = best_of(RUNS, || {
        bulk.explore_designs_with_telemetry(kernel, designs)
    });

    let scalar_sim = scalar_t.simulate_time.as_secs_f64();
    let bulk_sim = bulk_t.simulate_time.as_secs_f64();
    ScalarBaseline {
        kernel: kernel.name.clone(),
        scalar_secs,
        scalar_simulate_secs: scalar_sim,
        bulk_simulate_secs: bulk_sim,
        replay_speedup: scalar_sim / bulk_sim,
        identical: scalar_records == bulk_records,
    }
}

/// Multi-worker numbers on a strided subset of the expansive grid
/// (`DesignSpace::expansive()` has over a million candidates, so the
/// exhaustive sweep is infeasible — a fixed-stride sample keeps the
/// subset deterministic while still covering the full size/line/assoc/
/// tiling range).
struct ExpansiveResult {
    subset: usize,
    total: usize,
    workers: usize,
    serial_secs: f64,
    parallel_secs: f64,
    identical: bool,
}

fn bench_expansive(workers: usize) -> ExpansiveResult {
    const SUBSET: usize = 2048;
    let kernel = kernels::compress(31);
    let space = DesignSpace::expansive();
    let all = space.designs();
    let stride = (all.len() / SUBSET).max(1);
    let designs: Vec<memexplore::CacheDesign> = all.iter().copied().step_by(stride).collect();

    let serial = Explorer::default().with_workers(1);
    let parallel = Explorer::default().with_workers(workers);

    let (serial_secs, serial_records) = best_of(RUNS, || serial.explore_designs(&kernel, &designs));
    let (parallel_secs, parallel_records) =
        best_of(RUNS, || parallel.explore_designs(&kernel, &designs));

    ExpansiveResult {
        subset: designs.len(),
        total: all.len(),
        workers,
        serial_secs,
        parallel_secs,
        identical: serial_records == parallel_records,
    }
}

fn main() {
    bench::reject_args("bench_explore");
    let designs = DesignSpace::paper().designs();
    let num_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    // One row per (kernel, worker count): serial first, then the
    // machine's full parallelism — even when they coincide, both rows
    // are published so consumers can always key on `workers`.
    let worker_counts: Vec<usize> = if num_cpus == 1 {
        vec![1]
    } else {
        vec![1, num_cpus]
    };

    let mut results: Vec<KernelResult> = Vec::new();
    for kernel in kernels::all_paper_kernels() {
        for &workers in &worker_counts {
            results.push(bench_kernel(&kernel, &designs, workers));
        }
    }

    // Historical baseline: the pre-refactor seed engine, on compress only
    // (it regenerates the trace per design, so it is slow on every kernel).
    let kernel = kernels::compress(31);
    let evaluator = Evaluator::default();
    let (seed_secs, seed_records) =
        best_of(RUNS, || seed_explore_designs(&evaluator, &kernel, &designs));
    let compress = &results[0];
    let serial: Vec<Record> = Explorer::default()
        .with_workers(1)
        .explore_designs(&kernel, &designs);
    let fused_compress = Explorer::default()
        .with_engine(Engine::Fused)
        .explore_designs(&kernel, &designs);
    let identical_to_seed = fused_compress == seed_records;
    let identical_to_serial = fused_compress == serial;

    // PR 3's fused baseline: scalar (pre-bulk) replay on the heaviest
    // kernel, whose 3.9 M-event trace dominates the paper sweep.
    let scalar = bench_scalar_baseline(&kernels::matmul(31), &designs);

    let expansive = bench_expansive(num_cpus.max(2));

    let json = render_json(
        &results,
        num_cpus,
        seed_secs,
        compress.fused_secs,
        identical_to_seed,
        identical_to_serial,
        &scalar,
        &expansive,
    );
    std::fs::write("BENCH_explore.json", &json).expect("can write BENCH_explore.json");

    for r in &results {
        println!(
            "kernel {} | {} designs | {} worker(s) | fused {:.3} s | no-analytic {:.3} s | per-design {:.3} s | replay speedup {:.2}x | total {:.2}x",
            r.kernel, r.designs, r.workers, r.fused_secs, r.no_analytic_secs, r.per_design_secs,
            r.replay_speedup, r.total_speedup
        );
        assert!(r.identical, "{}: engines diverged", r.kernel);
    }
    println!(
        "seed engine on {}: {:.3} s ({:.2}x vs fused)",
        kernel.name,
        seed_secs,
        seed_secs / compress.fused_secs
    );
    println!(
        "scalar replay on {}: simulate {:.3} s vs bulk {:.3} s ({:.2}x)",
        scalar.kernel,
        scalar.scalar_simulate_secs,
        scalar.bulk_simulate_secs,
        scalar.replay_speedup
    );
    println!("{}", compress.telemetry);
    for r in &results {
        let scan = &r.telemetry.scan_latency;
        if scan.count > 0 {
            println!(
                "kernel {} ({} workers) | fused scan latency: {scan}",
                r.kernel, r.workers
            );
        }
    }
    println!(
        "records bit-identical to seed engine: {identical_to_seed}, to serial sweep: {identical_to_serial}"
    );
    println!(
        "expansive subset ({} of {} designs) | serial {:.3} s | {} workers {:.3} s | speedup {:.2}x | identical {}",
        expansive.subset,
        expansive.total,
        expansive.serial_secs,
        expansive.workers,
        expansive.parallel_secs,
        expansive.serial_secs / expansive.parallel_secs,
        expansive.identical
    );
    println!("wrote BENCH_explore.json");

    assert!(identical_to_seed, "fused engine diverged from seed engine");
    assert!(identical_to_serial, "parallel sweep diverged from serial");
    assert!(
        scalar.identical,
        "bulk-lane replay diverged from scalar replay"
    );
    assert!(
        expansive.identical,
        "multi-worker expansive sweep diverged from serial"
    );
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    results: &[KernelResult],
    num_cpus: usize,
    seed_secs: f64,
    fused_compress_secs: f64,
    identical_to_seed: bool,
    identical_to_serial: bool,
    scalar: &ScalarBaseline,
    expansive: &ExpansiveResult,
) -> String {
    let mut kernels_json = String::new();
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            kernels_json,
            concat!(
                "    {{\n",
                "      \"kernel\": \"{}\",\n",
                "      \"workers\": {},\n",
                "      \"designs\": {},\n",
                "      \"fused_secs\": {:.6},\n",
                "      \"fused_no_analytic_secs\": {:.6},\n",
                "      \"per_design_secs\": {:.6},\n",
                "      \"replay_phase_speedup\": {:.3},\n",
                "      \"total_speedup\": {:.3},\n",
                "      \"records_identical\": {},\n",
                "      \"telemetry\": {}\n",
                "    }}{}"
            ),
            r.kernel,
            r.workers,
            r.designs,
            r.fused_secs,
            r.no_analytic_secs,
            r.per_design_secs,
            r.replay_speedup,
            r.total_speedup,
            r.identical,
            r.telemetry.to_json(),
            if i + 1 < results.len() { ",\n" } else { "\n" }
        );
    }
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"explore_paper_space\",\n",
            "  \"runs_per_engine\": {},\n",
            "  \"num_cpus\": {},\n",
            "  \"engines\": [\"fused\", \"fused-no-analytic\", \"per-design\"],\n",
            "  \"kernels\": [\n{}  ],\n",
            "  \"seed_engine_secs_compress\": {:.6},\n",
            "  \"seed_vs_fused_speedup_compress\": {:.3},\n",
            "  \"records_identical_to_seed\": {},\n",
            "  \"records_identical_to_serial\": {},\n",
            "  \"scalar_replay_baseline\": {{\n",
            "    \"kernel\": \"{}\",\n",
            "    \"scalar_secs\": {:.6},\n",
            "    \"scalar_simulate_secs\": {:.6},\n",
            "    \"bulk_simulate_secs\": {:.6},\n",
            "    \"replay_phase_speedup\": {:.3},\n",
            "    \"records_identical\": {}\n",
            "  }},\n",
            "  \"expansive_subset\": {{\n",
            "    \"kernel\": \"Compress\",\n",
            "    \"subset_designs\": {},\n",
            "    \"grid_designs\": {},\n",
            "    \"workers\": {},\n",
            "    \"serial_secs\": {:.6},\n",
            "    \"parallel_secs\": {:.6},\n",
            "    \"speedup\": {:.3},\n",
            "    \"records_identical\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        RUNS,
        num_cpus,
        kernels_json,
        seed_secs,
        seed_secs / fused_compress_secs,
        identical_to_seed,
        identical_to_serial,
        scalar.kernel,
        scalar.scalar_secs,
        scalar.scalar_simulate_secs,
        scalar.bulk_simulate_secs,
        scalar.replay_speedup,
        scalar.identical,
        expansive.subset,
        expansive.total,
        expansive.workers,
        expansive.serial_secs,
        expansive.parallel_secs,
        expansive.serial_secs / expansive.parallel_secs,
        expansive.identical,
    )
}
