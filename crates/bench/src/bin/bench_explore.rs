//! Sweep-engine benchmark: fused one-pass replay vs per-design replay
//! (plus the historical seed-engine comparison on `compress`).
//!
//! For each of the paper's five kernels this runs the full
//! `DesignSpace::paper()` sweep with both the fused and the per-design
//! engine, checks the records are bit-identical, and reports the
//! replay-phase speedup (`simulate_time` per-design / fused) alongside
//! the wall-clock speedup. On `compress` it additionally times the
//! original seed engine as a baseline. Everything is written to
//! `BENCH_explore.json` in the current directory. Each engine is timed
//! over several runs and the best run is reported, which filters
//! scheduler noise without external tooling.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_explore
//! ```

use bench::seed_engine::seed_explore_designs;
use loopir::kernels;
use memexplore::{DesignSpace, Engine, Evaluator, Explorer, Record, SweepTelemetry};
use std::fmt::Write as _;
use std::time::Instant;

const RUNS: usize = 3;

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best: Option<(f64, T)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let value = f();
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, value));
        }
    }
    best.expect("runs >= 1")
}

struct KernelResult {
    kernel: String,
    designs: usize,
    fused_secs: f64,
    per_design_secs: f64,
    replay_speedup: f64,
    total_speedup: f64,
    identical: bool,
    telemetry: SweepTelemetry,
}

fn bench_kernel(kernel: &loopir::Kernel, designs: &[memexplore::CacheDesign]) -> KernelResult {
    let fused = Explorer::default().with_engine(Engine::Fused);
    let per_design = Explorer::default().with_engine(Engine::PerDesign);

    let (fused_secs, (fused_records, fused_t)) = best_of(RUNS, || {
        fused.explore_designs_with_telemetry(kernel, designs)
    });
    let (per_secs, (per_records, per_t)) = best_of(RUNS, || {
        per_design.explore_designs_with_telemetry(kernel, designs)
    });

    KernelResult {
        kernel: kernel.name.clone(),
        designs: designs.len(),
        fused_secs,
        per_design_secs: per_secs,
        replay_speedup: per_t.simulate_time.as_secs_f64() / fused_t.simulate_time.as_secs_f64(),
        total_speedup: per_secs / fused_secs,
        identical: fused_records == per_records,
        telemetry: fused_t,
    }
}

/// Multi-worker numbers on a strided subset of the expansive grid
/// (`DesignSpace::expansive()` has over a million candidates, so the
/// exhaustive sweep is infeasible — a fixed-stride sample keeps the
/// subset deterministic while still covering the full size/line/assoc/
/// tiling range).
struct ExpansiveResult {
    subset: usize,
    total: usize,
    workers: usize,
    serial_secs: f64,
    parallel_secs: f64,
    identical: bool,
}

fn bench_expansive() -> ExpansiveResult {
    const SUBSET: usize = 2048;
    let kernel = kernels::compress(31);
    let space = DesignSpace::expansive();
    let all = space.designs();
    let stride = (all.len() / SUBSET).max(1);
    let designs: Vec<memexplore::CacheDesign> = all.iter().copied().step_by(stride).collect();

    let serial = Explorer::default().with_workers(1);
    let workers = std::thread::available_parallelism().map_or(4, usize::from);
    let parallel = Explorer::default().with_workers(workers);

    let (serial_secs, serial_records) = best_of(RUNS, || serial.explore_designs(&kernel, &designs));
    let (parallel_secs, parallel_records) =
        best_of(RUNS, || parallel.explore_designs(&kernel, &designs));

    ExpansiveResult {
        subset: designs.len(),
        total: all.len(),
        workers,
        serial_secs,
        parallel_secs,
        identical: serial_records == parallel_records,
    }
}

fn main() {
    bench::reject_args("bench_explore");
    let designs = DesignSpace::paper().designs();

    let results: Vec<KernelResult> = kernels::all_paper_kernels()
        .iter()
        .map(|k| bench_kernel(k, &designs))
        .collect();

    // Historical baseline: the pre-refactor seed engine, on compress only
    // (it regenerates the trace per design, so it is slow on every kernel).
    let kernel = kernels::compress(31);
    let evaluator = Evaluator::default();
    let (seed_secs, seed_records) =
        best_of(RUNS, || seed_explore_designs(&evaluator, &kernel, &designs));
    let compress = &results[0];
    let serial: Vec<Record> = Explorer::default()
        .with_workers(1)
        .explore_designs(&kernel, &designs);
    let fused_compress = Explorer::default()
        .with_engine(Engine::Fused)
        .explore_designs(&kernel, &designs);
    let identical_to_seed = fused_compress == seed_records;
    let identical_to_serial = fused_compress == serial;

    let expansive = bench_expansive();

    let json = render_json(
        &results,
        seed_secs,
        compress.fused_secs,
        identical_to_seed,
        identical_to_serial,
        &expansive,
    );
    std::fs::write("BENCH_explore.json", &json).expect("can write BENCH_explore.json");

    for r in &results {
        println!(
            "kernel {} | {} designs | fused {:.3} s | per-design {:.3} s | replay speedup {:.2}x | total {:.2}x",
            r.kernel, r.designs, r.fused_secs, r.per_design_secs, r.replay_speedup, r.total_speedup
        );
        assert!(r.identical, "{}: engines diverged", r.kernel);
    }
    println!(
        "seed engine on {}: {:.3} s ({:.2}x vs fused)",
        kernel.name,
        seed_secs,
        seed_secs / compress.fused_secs
    );
    println!("{}", compress.telemetry);
    for r in &results {
        let scan = &r.telemetry.scan_latency;
        if scan.count > 0 {
            println!("kernel {} | fused scan latency: {scan}", r.kernel);
        }
    }
    println!(
        "records bit-identical to seed engine: {identical_to_seed}, to serial sweep: {identical_to_serial}"
    );
    println!(
        "expansive subset ({} of {} designs) | serial {:.3} s | {} workers {:.3} s | speedup {:.2}x | identical {}",
        expansive.subset,
        expansive.total,
        expansive.serial_secs,
        expansive.workers,
        expansive.parallel_secs,
        expansive.serial_secs / expansive.parallel_secs,
        expansive.identical
    );
    println!("wrote BENCH_explore.json");

    assert!(identical_to_seed, "fused engine diverged from seed engine");
    assert!(identical_to_serial, "parallel sweep diverged from serial");
    assert!(
        expansive.identical,
        "multi-worker expansive sweep diverged from serial"
    );
}

fn render_json(
    results: &[KernelResult],
    seed_secs: f64,
    fused_compress_secs: f64,
    identical_to_seed: bool,
    identical_to_serial: bool,
    expansive: &ExpansiveResult,
) -> String {
    let mut kernels_json = String::new();
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            kernels_json,
            concat!(
                "    {{\n",
                "      \"kernel\": \"{}\",\n",
                "      \"designs\": {},\n",
                "      \"fused_secs\": {:.6},\n",
                "      \"per_design_secs\": {:.6},\n",
                "      \"replay_phase_speedup\": {:.3},\n",
                "      \"total_speedup\": {:.3},\n",
                "      \"records_identical\": {},\n",
                "      \"telemetry\": {}\n",
                "    }}{}"
            ),
            r.kernel,
            r.designs,
            r.fused_secs,
            r.per_design_secs,
            r.replay_speedup,
            r.total_speedup,
            r.identical,
            r.telemetry.to_json(),
            if i + 1 < results.len() { ",\n" } else { "\n" }
        );
    }
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"explore_paper_space\",\n",
            "  \"runs_per_engine\": {},\n",
            "  \"engines\": [\"fused\", \"per-design\"],\n",
            "  \"kernels\": [\n{}  ],\n",
            "  \"seed_engine_secs_compress\": {:.6},\n",
            "  \"seed_vs_fused_speedup_compress\": {:.3},\n",
            "  \"records_identical_to_seed\": {},\n",
            "  \"records_identical_to_serial\": {},\n",
            "  \"expansive_subset\": {{\n",
            "    \"kernel\": \"Compress\",\n",
            "    \"subset_designs\": {},\n",
            "    \"grid_designs\": {},\n",
            "    \"workers\": {},\n",
            "    \"serial_secs\": {:.6},\n",
            "    \"parallel_secs\": {:.6},\n",
            "    \"speedup\": {:.3},\n",
            "    \"records_identical\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        RUNS,
        kernels_json,
        seed_secs,
        seed_secs / fused_compress_secs,
        identical_to_seed,
        identical_to_serial,
        expansive.subset,
        expansive.total,
        expansive.workers,
        expansive.serial_secs,
        expansive.parallel_secs,
        expansive.serial_secs / expansive.parallel_secs,
        expansive.identical,
    )
}
