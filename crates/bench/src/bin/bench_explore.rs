//! Sweep-engine benchmark: seed engine vs trace-once work stealing.
//!
//! Runs the full `DesignSpace::paper()` sweep of `kernels::compress(31)`
//! with both engines, checks the records are bit-identical (to each other
//! and to a fully serial sweep), and writes the timings plus the new
//! engine's [`SweepTelemetry`] to `BENCH_explore.json` in the current
//! directory. Each engine is timed over several runs and the best run is
//! reported, which filters scheduler noise without external tooling.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_explore
//! ```

use bench::seed_engine::seed_explore_designs;
use loopir::kernels;
use memexplore::{DesignSpace, Evaluator, Explorer, Record, SweepTelemetry};
use std::time::Instant;

const RUNS: usize = 3;

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best: Option<(f64, T)> = None;
    for _ in 0..runs {
        let start = Instant::now();
        let value = f();
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, value));
        }
    }
    best.expect("runs >= 1")
}

fn main() {
    let kernel = kernels::compress(31);
    let designs = DesignSpace::paper().designs();
    let evaluator = Evaluator::default();

    let (seed_secs, seed_records) =
        best_of(RUNS, || seed_explore_designs(&evaluator, &kernel, &designs));

    let explorer = Explorer::new(evaluator.clone());
    let (engine_secs, (records, telemetry)) = best_of(RUNS, || {
        explorer.explore_designs_with_telemetry(&kernel, &designs)
    });

    let serial: Vec<Record> = explorer
        .clone()
        .with_workers(1)
        .explore_designs(&kernel, &designs);
    let identical_to_seed = records == seed_records;
    let identical_to_serial = records == serial;
    let speedup = seed_secs / engine_secs;

    let json = render_json(
        &kernel.name,
        designs.len(),
        seed_secs,
        engine_secs,
        speedup,
        identical_to_seed,
        identical_to_serial,
        &telemetry,
    );
    std::fs::write("BENCH_explore.json", &json).expect("can write BENCH_explore.json");

    println!(
        "kernel {} | {} designs | seed {:.3} s | trace-once {:.3} s | speedup {:.2}x",
        kernel.name,
        designs.len(),
        seed_secs,
        engine_secs,
        speedup
    );
    println!("{telemetry}");
    println!("records bit-identical to seed engine: {identical_to_seed}, to serial sweep: {identical_to_serial}");
    println!("wrote BENCH_explore.json");

    assert!(identical_to_seed, "engines diverged");
    assert!(identical_to_serial, "parallel sweep diverged from serial");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    kernel: &str,
    designs: usize,
    seed_secs: f64,
    engine_secs: f64,
    speedup: f64,
    identical_to_seed: bool,
    identical_to_serial: bool,
    telemetry: &SweepTelemetry,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"explore_paper_space\",\n",
            "  \"kernel\": \"{}\",\n",
            "  \"designs\": {},\n",
            "  \"runs_per_engine\": {},\n",
            "  \"seed_engine_secs\": {:.6},\n",
            "  \"trace_once_engine_secs\": {:.6},\n",
            "  \"speedup\": {:.3},\n",
            "  \"records_identical_to_seed\": {},\n",
            "  \"records_identical_to_serial\": {},\n",
            "  \"telemetry\": {}\n",
            "}}\n"
        ),
        kernel,
        designs,
        RUNS,
        seed_secs,
        engine_secs,
        speedup,
        identical_to_seed,
        identical_to_serial,
        telemetry.to_json()
    )
}
