//! Streaming-sweep benchmark: a multi-hundred-megabyte synthetic `.din`
//! workload swept over the trace grid without ever materializing the
//! trace.
//!
//! The harness synthesizes a hot/cold access mixture (`memsim::synth`),
//! writes it out as Dinero `.din` text until the file crosses the target
//! size (100 MB by default; override with `BENCH_STREAM_MB` — CI's smoke
//! run uses a small value), then streams it through the full
//! `TraceWorkload` grid sweep and reports sustained parse+replay
//! throughput alongside the peak resident chunk footprint, which is the
//! whole point: memory stays O(chunk × workers) no matter how large the
//! file grows. The run fails if the peak chunk footprint ever exceeds
//! the configured chunk capacity.
//!
//! Results are written to `BENCH_stream.json` in the current directory.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_stream
//! ```

use memexplore::{select, TraceWorkload};
use memsim::din::{write_din, DinLabel, DinRecord};
use memsim::synth::{generate, Pattern};
use memsim::{TraceEvent, DEFAULT_CHUNK_CAPACITY};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::time::Instant;

/// Events synthesized per batch while growing the file.
const BATCH: usize = 1 << 20;

/// Footprint of the synthetic workload: 4 MiB with a 64 KiB hot region,
/// so the grid's caches see hits, misses, and writebacks alike.
const FOOTPRINT: u64 = 4 << 20;
const HOT_BYTES: u64 = 64 << 10;

fn target_bytes() -> u64 {
    let mb: u64 = std::env::var("BENCH_STREAM_MB")
        .ok()
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: BENCH_STREAM_MB must be a whole number of megabytes, got `{v}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(100);
    mb * 1_000_000
}

fn main() {
    bench::reject_args("bench_stream");
    let target = target_bytes();
    let path = std::env::temp_dir().join("bench_stream.din");

    // Synthesize the workload batch by batch until the file is big
    // enough. Every fourth access becomes a store so the write path
    // (writebacks, write energy) is exercised too.
    let synth_start = Instant::now();
    let mut written: u64 = 0;
    let mut events: u64 = 0;
    {
        let file = File::create(&path).expect("can create the scratch .din file");
        let mut out = BufWriter::new(file);
        let mut seed = 0x5eed;
        while written < target {
            let batch: Vec<DinRecord> = generate(
                Pattern::HotCold {
                    hot_bytes: HOT_BYTES,
                    hot_fraction: 0.9,
                },
                FOOTPRINT,
                4,
                BATCH,
                seed,
            )
            .iter()
            .enumerate()
            .map(|(i, e)| DinRecord {
                label: if i % 4 == 3 {
                    DinLabel::Write
                } else {
                    DinLabel::Read
                },
                addr: e.addr,
            })
            .collect();
            let mut bytes = Vec::new();
            write_din(&mut bytes, &batch).expect("in-memory write cannot fail");
            out.write_all(&bytes).expect("can grow the scratch file");
            written += bytes.len() as u64;
            events += batch.len() as u64;
            seed += 1;
        }
        out.flush().expect("can flush the scratch file");
    }
    let synth_secs = synth_start.elapsed().as_secs_f64();

    // Prepare (one fingerprint pass over the file) and sweep (the
    // streamed grid replay), timed separately.
    let prepare_start = Instant::now();
    let workload = TraceWorkload::from_path(&path).expect("the synthesized trace is well-formed");
    let prepare_secs = prepare_start.elapsed().as_secs_f64();
    assert_eq!(workload.events(), events, "fingerprint pass lost events");

    let designs = TraceWorkload::design_space().designs();
    let explorer = memexplore::Explorer::default();
    let sweep_start = Instant::now();
    let (records, telemetry) = explorer
        .explore_trace(&workload, &designs)
        .expect("streamed sweep succeeds");
    let sweep_secs = sweep_start.elapsed().as_secs_f64();

    let best = select::min_energy(&records).expect("non-empty sweep");
    let chunk_budget = (workload.chunk_capacity() * std::mem::size_of::<TraceEvent>()) as u64;
    assert!(
        telemetry.peak_chunk_bytes <= chunk_budget,
        "resident chunk {} B exceeds the {} B budget",
        telemetry.peak_chunk_bytes,
        chunk_budget
    );

    let events_per_sec = events as f64 / sweep_secs;
    let design_events_per_sec = events as f64 * designs.len() as f64 / sweep_secs;
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"stream_sweep\",\n",
            "  \"din_bytes\": {},\n",
            "  \"events\": {},\n",
            "  \"designs\": {},\n",
            "  \"synth_secs\": {:.6},\n",
            "  \"prepare_secs\": {:.6},\n",
            "  \"sweep_secs\": {:.6},\n",
            "  \"events_per_sec\": {:.1},\n",
            "  \"design_events_per_sec\": {:.1},\n",
            "  \"workers\": {},\n",
            "  \"chunk_capacity\": {},\n",
            "  \"peak_chunk_bytes_per_worker\": {},\n",
            "  \"chunk_budget_bytes\": {},\n",
            "  \"min_energy_nj\": {:.3}\n",
            "}}\n"
        ),
        written,
        events,
        designs.len(),
        synth_secs,
        prepare_secs,
        sweep_secs,
        events_per_sec,
        design_events_per_sec,
        telemetry.workers,
        workload.chunk_capacity(),
        telemetry.peak_chunk_bytes,
        chunk_budget,
        best.energy_nj,
    );
    std::fs::write("BENCH_stream.json", &json).expect("can write BENCH_stream.json");
    std::fs::remove_file(&path).ok();

    println!(
        "{written} B ({events} events) streamed over {} designs in {sweep_secs:.3} s",
        designs.len()
    );
    println!(
        "{events_per_sec:.0} events/s ({design_events_per_sec:.2e} design-events/s) | \
         peak resident chunk {} B per worker (budget {} B, {} workers)",
        telemetry.peak_chunk_bytes, chunk_budget, telemetry.workers
    );
    assert_eq!(DEFAULT_CHUNK_CAPACITY, workload.chunk_capacity());
    println!("wrote BENCH_stream.json");
}
