//! Prints the paper's Figure 07 reproduction (see `bench::figures`).
fn main() {
    print!("{}", bench::figures::fig07());
}
