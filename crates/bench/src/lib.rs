//! Figure-regeneration harness for the DAC'99 reproduction.
//!
//! One library function per paper figure (`figures::fig01` … `fig10`), each
//! returning the rendered text tables; the `fig01`…`fig10` binaries print
//! them, and `all_figures` prints everything (this is what populates
//! `EXPERIMENTS.md`). Criterion benchmarks in `benches/` time the underlying
//! machinery and the ablation studies.

pub mod figures;
pub mod seed_engine;
pub mod tables;

pub use tables::Table;

/// Argument hygiene for the `bench_*` binaries: they take no arguments,
/// and like `memx` they must fail fast on anything unexpected instead of
/// silently ignoring it — exit code 2 with a one-line `error:` message.
pub fn reject_args(bin: &str) {
    if let Some(arg) = std::env::args().nth(1) {
        eprintln!("error: unknown argument `{arg}` for {bin} (takes no arguments)");
        std::process::exit(2);
    }
}
