//! The pre-trace-arena sweep engine, kept as the benchmark baseline.
//!
//! This is a faithful replica of the original `Explorer::explore_designs`:
//! off-chip layouts are precomputed serially per `(T, L)`, then designs
//! are split into static contiguous chunks (one per worker), and every
//! design regenerates its access trace from the loop nest inside
//! [`Evaluator::evaluate_with_layout`]. The `bench_explore` harness runs
//! it head-to-head against the trace-once, work-stealing engine and
//! records the speedup in `BENCH_explore.json`; keeping the old engine
//! here (instead of in `memexplore`) means the library ships only one
//! sweep path while the comparison stays reproducible.

use loopir::transform::tile_all;
use loopir::{AccessKind, DataLayout, Kernel, TraceGen};
use memexplore::{CacheDesign, Evaluator, Record};
use memsim::{Simulator, TraceEvent};
use std::collections::HashMap;

/// Sweeps `designs` with the seed engine (static chunking, one trace
/// regeneration per design).
pub fn seed_explore_designs(
    evaluator: &Evaluator,
    kernel: &Kernel,
    designs: &[CacheDesign],
) -> Vec<Record> {
    let mut layouts: HashMap<(usize, usize), (DataLayout, bool)> = HashMap::new();
    for d in designs {
        layouts
            .entry((d.cache_size, d.line))
            .or_insert_with(|| evaluator.layout_for(kernel, d.cache_size, d.line));
    }
    // The seed evaluation path: re-tile, re-walk the loop nest, and feed
    // the simulator from the live iterator (no materialized trace).
    let eval_one = |d: CacheDesign| {
        let (layout, cf) = &layouts[&(d.cache_size, d.line)];
        let config = d
            .cache_config()
            .unwrap_or_else(|e| panic!("invalid design {d}: {e}"));
        let tiled = tile_all(kernel, d.tiling);
        let events = TraceGen::new(&tiled, layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        let mut sim = Simulator::with_options(config, evaluator.bus_encoding, false);
        sim.run(events);
        let report = sim.into_report();
        let hits = report.stats.read_hits;
        let misses = report.stats.read_misses();
        let cycles = evaluator
            .cycle_model
            .cycles_from_counts(hits, misses, d.assoc, d.line, d.tiling);
        Record {
            design: d,
            miss_rate: report.stats.read_miss_rate(),
            cycles,
            energy_nj: evaluator.energy_model.trace_energy_nj(&report),
            trip_count: report.stats.reads,
            conflict_free: *cf,
        }
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(designs.len().max(1));
    if workers <= 1 || designs.len() < 4 {
        return designs.iter().map(|&d| eval_one(d)).collect();
    }
    let mut slots: Vec<Option<Record>> = vec![None; designs.len()];
    std::thread::scope(|scope| {
        let chunk = designs.len().div_ceil(workers);
        for (designs_chunk, slots_chunk) in designs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            let eval_one = &eval_one;
            scope.spawn(move || {
                for (d, slot) in designs_chunk.iter().zip(slots_chunk.iter_mut()) {
                    *slot = Some(eval_one(*d));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every slot filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;
    use memexplore::{DesignSpace, Explorer};

    #[test]
    fn seed_and_trace_once_engines_agree() {
        let k = kernels::compress(15);
        let designs = DesignSpace::small().designs();
        let evaluator = Evaluator::default();
        let seed = seed_explore_designs(&evaluator, &k, &designs);
        let new = Explorer::new(evaluator).explore_designs(&k, &designs);
        assert_eq!(seed, new);
    }
}
