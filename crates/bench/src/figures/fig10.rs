//! Figure 10 + §5 — the MPEG decoder case study.
//!
//! Per kernel: the minimum-energy cache configuration over the full
//! `(T, L, S, B)` space. For the whole decoder (trip-weighted aggregation):
//! the minimum-energy and minimum-time configurations, which the paper shows
//! to differ both from each other and from every kernel's own optimum.

use crate::tables::{fmt_cycles, fmt_nj, Table};
use memexplore::composite::as_records;
use memexplore::{select, DesignSpace, Explorer};
use std::fmt::Write as _;

/// Regenerates Figure 10 and the §5 whole-program numbers.
pub fn fig10() -> String {
    let program = mpeg::decoder();
    let explorer = Explorer::default();
    let space = DesignSpace::paper();

    let mut out = String::new();
    out.push_str("# Figure 10 — MPEG decoder case study\n\n");

    // Per-kernel minimum-energy configurations.
    let mut table = Table::new(
        "minimum-energy configuration per kernel",
        &[
            "kernel",
            "cache",
            "line",
            "assoc",
            "tiling",
            "energy (nJ)",
            "cycles",
        ],
    );
    let designs = space.designs();
    let mut per_kernel_records = Vec::new();
    for (kernel, _) in &program.components {
        let records = explorer.explore_designs(kernel, &designs);
        let best = select::min_energy(&records).expect("non-empty space");
        table.row(vec![
            kernel.name.clone(),
            best.design.cache_size.to_string(),
            best.design.line.to_string(),
            best.design.assoc.to_string(),
            best.design.tiling.to_string(),
            fmt_nj(best.energy_nj),
            fmt_cycles(best.cycles),
        ]);
        per_kernel_records.push(records);
    }
    out.push_str(&table.render());
    out.push('\n');

    // Whole-program aggregation (§5 formulas) reuses the per-kernel sweeps.
    let composites: Vec<_> = (0..designs.len())
        .map(|i| program.aggregate(per_kernel_records.iter().map(|rs| rs[i].clone()).collect()))
        .collect();
    let flat = as_records(&composites);
    let e_min = select::min_energy(&flat).expect("non-empty space");
    let t_min = select::min_cycles(&flat).expect("non-empty space");

    let _ = writeln!(out, "## whole-decoder optima (trip-weighted)");
    let _ = writeln!(
        out,
        "minimum energy: {}  energy={} nJ  cycles={}",
        e_min.design,
        fmt_nj(e_min.energy_nj),
        fmt_cycles(e_min.cycles)
    );
    let _ = writeln!(
        out,
        "minimum time:   {}  cycles={}  energy={} nJ",
        t_min.design,
        fmt_cycles(t_min.cycles),
        fmt_nj(t_min.energy_nj)
    );
    if e_min.design != t_min.design {
        let _ = writeln!(
            out,
            "=> the minimum-energy and minimum-time configurations differ, as in the paper"
        );
    }
    out
}
