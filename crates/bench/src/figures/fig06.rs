//! Figure 6 — miss rate, cycles, and energy vs tiling size at C64L8
//! (`Em` = 4.95 nJ) for the five kernels.
//!
//! The paper's observation: metrics improve with tiling up to the number of
//! cache lines (8 here), then degrade — tiles wider than the cache replace
//! data before it is reused.

use super::five_kernels;
use crate::tables::{fmt_cycles, fmt_mr, fmt_nj, Table};
use memexplore::{CacheDesign, Evaluator, Record};

/// Tiling sizes swept (16 deliberately exceeds the 8 cache lines).
pub const TILINGS: [u64; 5] = [1, 2, 4, 8, 16];

/// Regenerates Figure 6.
pub fn fig06() -> String {
    let kernels = five_kernels();
    let eval = Evaluator::default();
    let records: Vec<Vec<Record>> = kernels
        .iter()
        .map(|k| {
            TILINGS
                .iter()
                .map(|&b| eval.evaluate(k, CacheDesign::new(64, 8, 1, b)))
                .collect()
        })
        .collect();

    let mut out = String::new();
    out.push_str("# Figure 6 — metrics vs tiling size (C64 L8, Em = 4.95 nJ)\n\n");
    for (name, metric) in [("miss rate", 0usize), ("cycles", 1), ("energy (nJ)", 2)] {
        let mut header = vec!["tiling".to_string()];
        header.extend(kernels.iter().map(|k| k.name.clone()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(name, &header_refs);
        for (bi, &b) in TILINGS.iter().enumerate() {
            let mut row = vec![format!("B{b}")];
            for recs in &records {
                let r = &recs[bi];
                row.push(match metric {
                    0 => fmt_mr(r.miss_rate),
                    1 => fmt_cycles(r.cycles),
                    _ => fmt_nj(r.energy_nj),
                });
            }
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}
