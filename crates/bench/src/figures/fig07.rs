//! Figure 7 — Compress and Dequant: energy vs tiling size (T1…T16) and vs
//! set associativity (SA1…SA8) at C64L8.

use crate::tables::{fmt_nj, Table};
use loopir::kernels::{compress, dequant};
use memexplore::{CacheDesign, Evaluator};

/// Regenerates Figure 7.
pub fn fig07() -> String {
    let kernels = [compress(31), dequant(31)];
    let eval = Evaluator::default();
    let mut out = String::new();
    out.push_str("# Figure 7 — energy vs tiling and vs associativity (C64 L8)\n\n");

    let mut tiling = Table::new(
        "energy (nJ) vs tiling size",
        &["tiling", "Compress", "Dequant"],
    );
    for b in [1u64, 2, 4, 8, 16] {
        let mut row = vec![format!("T{b}")];
        for k in &kernels {
            row.push(fmt_nj(
                eval.evaluate(k, CacheDesign::new(64, 8, 1, b)).energy_nj,
            ));
        }
        tiling.row(row);
    }
    out.push_str(&tiling.render());
    out.push('\n');

    let mut assoc = Table::new(
        "energy (nJ) vs set associativity",
        &["assoc", "Compress", "Dequant"],
    );
    for s in [1usize, 2, 4, 8] {
        let mut row = vec![format!("SA{s}")];
        for k in &kernels {
            row.push(fmt_nj(
                eval.evaluate(k, CacheDesign::new(64, 8, s, 1)).energy_nj,
            ));
        }
        assoc.row(row);
    }
    out.push_str(&assoc.render());
    out
}
