//! Figure 5 — Compress: miss-rate reduction from the off-chip memory
//! assignment (optimized vs unoptimized layout) at C32L4, C64L8, C128L16.
//!
//! The paper calls this the single largest performance lever: for
//! compatible patterns the assignment eliminates conflict misses entirely.

use crate::tables::{fmt_mr, Table};
use loopir::kernels::compress;
use memexplore::{CacheDesign, Evaluator};

/// The sampled configurations.
pub const POINTS: [(usize, usize); 3] = [(32, 4), (64, 8), (128, 16)];

/// Regenerates Figure 5.
pub fn fig05() -> String {
    let kernel = compress(31);
    let opt = Evaluator::default();
    let unopt = Evaluator::default().unoptimized();
    let mut table = Table::new(
        "Compress miss rate, optimized vs unoptimized layout",
        &["config", "optimized", "unoptimized", "reduction"],
    );
    for &(t, l) in &POINTS {
        let d = CacheDesign::new(t, l, 1, 1);
        let ro = opt.evaluate(&kernel, d);
        let ru = unopt.evaluate(&kernel, d);
        let reduction = if ru.miss_rate > 0.0 {
            format!("{:.0}%", 100.0 * (1.0 - ro.miss_rate / ru.miss_rate))
        } else {
            "-".to_string()
        };
        table.row(vec![
            format!("C{t} L{l}"),
            fmt_mr(ro.miss_rate),
            fmt_mr(ru.miss_rate),
            reduction,
        ]);
    }
    format!(
        "# Figure 5 — off-chip assignment miss-rate reduction\n\n{}",
        table.render()
    )
}
