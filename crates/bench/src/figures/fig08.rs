//! Figure 8 — miss rate, cycles, and energy vs set associativity at C64L8
//! (tiling 1, `Em` = 4.95 nJ) for the five kernels.
//!
//! Higher associativity removes conflict misses but lengthens the hit path
//! (the cycle model's 1 → 1.14 cycles per hit), so neither cycles nor energy
//! are guaranteed to fall.

use super::five_kernels;
use crate::tables::{fmt_cycles, fmt_mr, fmt_nj, Table};
use memexplore::{CacheDesign, Evaluator, Record};

/// Associativities swept.
pub const ASSOCS: [usize; 4] = [1, 2, 4, 8];

/// Regenerates Figure 8.
pub fn fig08() -> String {
    let kernels = five_kernels();
    let eval = Evaluator::default();
    let records: Vec<Vec<Record>> = kernels
        .iter()
        .map(|k| {
            ASSOCS
                .iter()
                .map(|&s| eval.evaluate(k, CacheDesign::new(64, 8, s, 1)))
                .collect()
        })
        .collect();

    let mut out = String::new();
    out.push_str("# Figure 8 — metrics vs set associativity (C64 L8, tiling 1)\n\n");
    for (name, metric) in [("miss rate", 0usize), ("cycles", 1), ("energy (nJ)", 2)] {
        let mut header = vec!["assoc".to_string()];
        header.extend(kernels.iter().map(|k| k.name.clone()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(name, &header_refs);
        for (si, &s) in ASSOCS.iter().enumerate() {
            let mut row = vec![format!("SA{s}")];
            for recs in &records {
                let r = &recs[si];
                row.push(match metric {
                    0 => fmt_mr(r.miss_rate),
                    1 => fmt_cycles(r.cycles),
                    _ => fmt_nj(r.energy_nj),
                });
            }
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}
