//! Figure 4 — Compress: energy over the cache × line grid at the reference
//! part (`Em` = 4.95 nJ), plus the §3 bounded selections.
//!
//! The paper's narrative on this grid: the minimum-energy configuration is a
//! *small* cache, the minimum-time configuration the *largest*; a cycle
//! bound pulls the energy optimum toward larger caches, and an energy bound
//! pulls the time optimum back. We print the same four selections with
//! bounds set at 1.25× the respective minima (the paper's absolute bounds,
//! 5,000 cycles and 5,500 nJ, refer to its analytical-model numbers).

use super::{grid_records, metric_grid_table};
use crate::tables::{fmt_cycles, fmt_nj};
use loopir::kernels::compress;
use memexplore::{select, Evaluator};
use std::fmt::Write as _;

/// Regenerates Figure 4.
pub fn fig04() -> String {
    let records = grid_records(&compress(31), &Evaluator::default());
    let mut out = String::new();
    out.push_str("# Figure 4 — Compress energy vs cache & line size (Em = 4.95 nJ)\n\n");
    out.push_str(&metric_grid_table("energy (nJ)", &records, |r| fmt_nj(r.energy_nj)).render());
    out.push('\n');

    let e_min = select::min_energy(&records).expect("grid is non-empty");
    let t_min = select::min_cycles(&records).expect("grid is non-empty");
    let cycle_bound = t_min.cycles * 1.25;
    let energy_bound = e_min.energy_nj * 1.25;
    let e_bounded = select::min_energy_bounded(&records, cycle_bound);
    let t_bounded = select::min_cycles_bounded(&records, energy_bound);

    let _ = writeln!(out, "## selections");
    let _ = writeln!(
        out,
        "minimum energy:              {} ({} nJ, {} cycles)",
        e_min.design,
        fmt_nj(e_min.energy_nj),
        fmt_cycles(e_min.cycles)
    );
    let _ = writeln!(
        out,
        "minimum time:                {} ({} cycles, {} nJ)",
        t_min.design,
        fmt_cycles(t_min.cycles),
        fmt_nj(t_min.energy_nj)
    );
    match e_bounded {
        Some(r) => {
            let _ = writeln!(
                out,
                "min energy s.t. cycles <= {}: {} ({} nJ, {} cycles)",
                fmt_cycles(cycle_bound),
                r.design,
                fmt_nj(r.energy_nj),
                fmt_cycles(r.cycles)
            );
        }
        None => {
            let _ = writeln!(out, "min energy under cycle bound: infeasible");
        }
    }
    match t_bounded {
        Some(r) => {
            let _ = writeln!(
                out,
                "min time s.t. energy <= {} nJ: {} ({} cycles, {} nJ)",
                fmt_nj(energy_bound),
                r.design,
                fmt_cycles(r.cycles),
                fmt_nj(r.energy_nj)
            );
        }
        None => {
            let _ = writeln!(out, "min time under energy bound: infeasible");
        }
    }

    let _ = writeln!(out, "\n## energy-time pareto frontier");
    for r in select::pareto(&records) {
        let _ = writeln!(
            out,
            "  {}  cycles={}  energy={} nJ",
            r.design,
            fmt_cycles(r.cycles),
            fmt_nj(r.energy_nj)
        );
    }

    // The paper derived its grid from closed-form expressions; replaying
    // the same grid through the analytical (conflict-free, capacity-blind)
    // model recovers its exact selections: minimum energy at the smallest
    // cache, minimum time at the largest line.
    out.push('\n');
    let eval = Evaluator::default();
    let kernel = compress(31);
    let analytical: Vec<_> = super::GRID_SIZES
        .iter()
        .flat_map(|&t| {
            super::GRID_LINES
                .iter()
                .filter(move |&&l| l <= t && t / l >= super::MIN_LINES)
                .map(move |&l| (t, l))
        })
        .map(|(t, l)| eval.evaluate_analytical(&kernel, memexplore::CacheDesign::new(t, l, 1, 1)))
        .collect();
    out.push_str(
        &metric_grid_table(
            "energy (nJ), paper's analytical miss-rate model",
            &analytical,
            |r| fmt_nj(r.energy_nj),
        )
        .render(),
    );
    let ae = select::min_energy(&analytical).expect("grid is non-empty");
    let at = select::min_cycles(&analytical).expect("grid is non-empty");
    let _ = writeln!(
        out,
        "\nanalytical minimum energy: {} ({} nJ) — the paper's C16L4",
        ae.design,
        fmt_nj(ae.energy_nj)
    );
    let _ = writeln!(
        out,
        "analytical minimum time:   L{} at any size ({} cycles) — the paper's C512L64",
        at.design.line,
        fmt_cycles(at.cycles)
    );
    out
}
