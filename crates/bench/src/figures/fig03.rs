//! Figure 3 — Compress: processor cycles over the cache × line grid
//! (configurations with at least 4 cache lines).
//!
//! Cycles fall monotonically toward the big-cache/big-line corner — which is
//! exactly why cycles alone mislead a low-power design.

use super::{grid_records, metric_grid_table};
use crate::tables::fmt_cycles;
use loopir::kernels::compress;
use memexplore::Evaluator;

/// Regenerates Figure 3.
pub fn fig03() -> String {
    let records = grid_records(&compress(31), &Evaluator::default());
    let mut out = String::new();
    out.push_str("# Figure 3 — Compress cycles vs cache & line size\n\n");
    out.push_str(
        &metric_grid_table("cycles (>= 4 lines)", &records, |r| fmt_cycles(r.cycles)).render(),
    );
    out
}
