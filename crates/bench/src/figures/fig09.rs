//! Figure 9 — combined set associativity × tiling at C64L8, with optimized
//! values and (in parentheses) unoptimized-layout values.
//!
//! The paper's takeaway: without the off-chip assignment the miss rate is so
//! large that tiling and associativity barely matter.

use super::five_kernels;
use crate::tables::{fmt_cycles, fmt_mr, fmt_nj, Table};
use memexplore::{CacheDesign, Evaluator, Record};

/// The sampled (associativity, tiling) pairs.
pub const PAIRS: [(usize, u64); 3] = [(1, 1), (2, 4), (8, 8)];

/// Regenerates Figure 9.
pub fn fig09() -> String {
    let kernels = five_kernels();
    let opt = Evaluator::default();
    let unopt = Evaluator::default().unoptimized();
    // records[kernel][pair] = (optimized, unoptimized)
    let records: Vec<Vec<(Record, Record)>> = kernels
        .iter()
        .map(|k| {
            PAIRS
                .iter()
                .map(|&(s, b)| {
                    let d = CacheDesign::new(64, 8, s, b);
                    (opt.evaluate(k, d), unopt.evaluate(k, d))
                })
                .collect()
        })
        .collect();

    let mut out = String::new();
    out.push_str(
        "# Figure 9 — associativity x tiling, optimized (unoptimized) layouts (C64 L8)\n\n",
    );
    for (name, metric) in [("miss rate", 0usize), ("cycles", 1), ("energy (nJ)", 2)] {
        let mut header = vec!["SA/TS".to_string()];
        header.extend(kernels.iter().map(|k| k.name.clone()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(name, &header_refs);
        for (pi, &(s, b)) in PAIRS.iter().enumerate() {
            let mut row = vec![format!("SA{s} TS{b}")];
            for recs in &records {
                let (ro, ru) = &recs[pi];
                row.push(match metric {
                    0 => format!("{} ({})", fmt_mr(ro.miss_rate), fmt_mr(ru.miss_rate)),
                    1 => format!("{} ({})", fmt_cycles(ro.cycles), fmt_cycles(ru.cycles)),
                    _ => format!("{} ({})", fmt_nj(ro.energy_nj), fmt_nj(ru.energy_nj)),
                });
            }
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}
