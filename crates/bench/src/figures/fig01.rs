//! Figure 1 — Compress: energy vs cache size and line size at the two
//! extremes of off-chip energy (`Em` = 43.56 nJ and `Em` = 2.31 nJ).
//!
//! The paper's point: with an expensive off-chip memory, energy *falls* as
//! cache and line size grow (misses dominate); with a cheap one, energy
//! *rises* (the cell array dominates). Miss rate alone would always favour
//! the big cache.

use super::{grid_records, metric_grid_table};
use crate::tables::fmt_nj;
use energy::SramPart;
use loopir::kernels::compress;
use memexplore::Evaluator;

/// Regenerates Figure 1.
pub fn fig01() -> String {
    let kernel = compress(31);
    let mut out = String::new();
    out.push_str("# Figure 1 — Compress energy (nJ) for Em extremes\n\n");
    for part in [SramPart::sram_16mbit(), SramPart::low_power_2mbit()] {
        let em = part.energy_per_access_nj;
        let records = grid_records(&kernel, &Evaluator::with_part(part));
        let table = metric_grid_table(&format!("energy (nJ), Em = {em} nJ"), &records, |r| {
            fmt_nj(r.energy_nj)
        });
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}
