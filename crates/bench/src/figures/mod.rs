//! One module per paper figure. Each `figNN()` returns the rendered tables.
//!
//! | figure | contents |
//! |---|---|
//! | [`fig01`] | Compress energy vs (cache, line) at `Em` = 43.56 / 2.31 nJ |
//! | [`fig02`] | miss rate / cycles / energy at four (C, L) points, 5 kernels |
//! | [`fig03`] | Compress cycles grid |
//! | [`fig04`] | Compress energy grid (`Em` = 4.95) + bounded selections |
//! | [`fig05`] | off-chip assignment: optimized vs unoptimized miss rate |
//! | [`fig06`] | metrics vs tiling size, 5 kernels |
//! | [`fig07`] | Compress & Dequant energy vs tiling and vs associativity |
//! | [`fig08`] | metrics vs set associativity, 5 kernels |
//! | [`fig09`] | combined associativity × tiling, optimized vs unoptimized |
//! | [`fig10`] | MPEG decoder: per-kernel and whole-program optima |

mod fig01;
mod fig02;
mod fig03;
mod fig04;
mod fig05;
mod fig06;
mod fig07;
mod fig08;
mod fig09;
mod fig10;

pub use fig01::fig01;
pub use fig02::fig02;
pub use fig03::fig03;
pub use fig04::fig04;
pub use fig05::fig05;
pub use fig06::fig06;
pub use fig07::fig07;
pub use fig08::fig08;
pub use fig09::fig09;
pub use fig10::fig10;

use crate::tables::Table;
use loopir::Kernel;
use memexplore::{CacheDesign, Evaluator, Record};

/// Cache sizes of the paper's Figs. 1, 3, 4 grids.
pub const GRID_SIZES: [usize; 6] = [16, 32, 64, 128, 256, 512];
/// Line sizes of the paper's Figs. 1, 3, 4 grids.
pub const GRID_LINES: [usize; 5] = [4, 8, 16, 32, 64];
/// The paper's Fig. 3 note: configurations keep at least 4 cache lines.
pub const MIN_LINES: usize = 4;

/// The five evaluation kernels at the paper's 31×31 iteration space.
pub fn five_kernels() -> Vec<Kernel> {
    loopir::kernels::all_paper_kernels()
}

/// Direct-mapped, untiled records over the (size, line) grid.
pub fn grid_records(kernel: &Kernel, evaluator: &Evaluator) -> Vec<Record> {
    let designs: Vec<CacheDesign> = GRID_SIZES
        .iter()
        .flat_map(|&t| {
            GRID_LINES
                .iter()
                .filter(move |&&l| l <= t && t / l >= MIN_LINES)
                .map(move |&l| CacheDesign::new(t, l, 1, 1))
        })
        .collect();
    memexplore::Explorer::new(evaluator.clone()).explore_designs(kernel, &designs)
}

/// Looks up the grid record at `(t, l)`.
pub fn find(records: &[Record], t: usize, l: usize) -> Option<&Record> {
    records
        .iter()
        .find(|r| r.design.cache_size == t && r.design.line == l)
}

/// Renders a size × line grid of one metric.
pub fn metric_grid_table(
    title: &str,
    records: &[Record],
    metric: impl Fn(&Record) -> String,
) -> Table {
    let mut header: Vec<String> = vec!["cache".to_string()];
    header.extend(GRID_LINES.iter().map(|l| format!("L{l}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for &t in &GRID_SIZES {
        let mut row = vec![format!("C{t}")];
        for &l in &GRID_LINES {
            row.push(match find(records, t, l) {
                Some(r) => metric(r),
                None => "-".to_string(),
            });
        }
        table.row(row);
    }
    table
}
