//! Figure 2 — miss rate, cycles, and energy vs (cache size, line size) for
//! the five kernels at `Em` = 4.95 nJ.
//!
//! The paper samples the diagonal C16L4 → C32L8 → C64L16 → C128L32; miss
//! rate and cycles shrink monotonically, while energy need not.

use super::five_kernels;
use crate::tables::{fmt_cycles, fmt_mr, fmt_nj, Table};
use memexplore::{CacheDesign, Evaluator, Record};

/// The sampled diagonal.
pub const POINTS: [(usize, usize); 4] = [(16, 4), (32, 8), (64, 16), (128, 32)];

/// Regenerates Figure 2.
pub fn fig02() -> String {
    let kernels = five_kernels();
    let eval = Evaluator::default();
    // records[kernel][point]
    let records: Vec<Vec<Record>> = kernels
        .iter()
        .map(|k| {
            POINTS
                .iter()
                .map(|&(t, l)| eval.evaluate(k, CacheDesign::new(t, l, 1, 1)))
                .collect()
        })
        .collect();

    let mut out = String::new();
    out.push_str("# Figure 2 — metrics vs cache & line size (Em = 4.95 nJ)\n\n");
    for (name, metric) in [("miss rate", 0usize), ("cycles", 1), ("energy (nJ)", 2)] {
        let mut header = vec!["config".to_string()];
        header.extend(kernels.iter().map(|k| k.name.clone()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(name, &header_refs);
        for (pi, &(t, l)) in POINTS.iter().enumerate() {
            let mut row = vec![format!("C{t} L{l}")];
            for recs in &records {
                let r = &recs[pi];
                row.push(match metric {
                    0 => fmt_mr(r.miss_rate),
                    1 => fmt_cycles(r.cycles),
                    _ => fmt_nj(r.energy_nj),
                });
            }
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}
