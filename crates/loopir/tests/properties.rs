//! Property-based tests for the loop-nest IR.

use loopir::parse::parse_kernel;
use loopir::transform::{interchange, tile_all};
use loopir::{
    AffineExpr, ArrayDecl, ArrayId, ArrayRef, DataLayout, Kernel, Loop, LoopNest, TraceGen,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_expr() -> impl Strategy<Value = (AffineExpr, Vec<i64>)> {
    // An expression over up to 3 variables plus an evaluation point.
    (
        proptest::collection::vec(-5i64..=5, 3),
        -10i64..=10,
        proptest::collection::vec(-20i64..=20, 3),
    )
        .prop_map(|(coeffs, k, point)| {
            let mut e = AffineExpr::constant(k);
            for (d, &c) in coeffs.iter().enumerate() {
                e = e + AffineExpr::linear(d, c, 0);
            }
            (e, point)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expr_addition_is_pointwise((a, p) in arb_expr(), (b, _) in arb_expr()) {
        let sum = a.clone() + b.clone();
        prop_assert_eq!(sum.eval(&p), a.eval(&p) + b.eval(&p));
    }

    #[test]
    fn expr_scaling_is_pointwise((a, p) in arb_expr(), k in -4i64..=4) {
        prop_assert_eq!((a.clone() * k).eval(&p), k * a.eval(&p));
    }

    #[test]
    fn remap_depths_commutes_with_eval((a, p) in arb_expr(), shift in 0usize..3) {
        // Shifting depths by `shift` and padding the point front with zeros
        // (whose values are then read at the shifted positions) keeps eval.
        let shifted = a.remap_depths(|d| d + shift);
        let mut padded = vec![0i64; shift];
        padded.extend(&p);
        prop_assert_eq!(shifted.eval(&padded), a.eval(&p));
    }

    #[test]
    fn linear_part_and_constant_fully_determine_eval((a, p) in arb_expr()) {
        let manual: i64 = a
            .linear_part(3)
            .iter()
            .zip(&p)
            .map(|(c, x)| c * x)
            .sum::<i64>()
            + a.constant_term();
        prop_assert_eq!(a.eval(&p), manual);
    }
}

/// Random rectangular 2-D kernels with in-bounds stencil refs, rendered to
/// the text format and parsed back.
fn arb_stencil() -> impl Strategy<Value = (usize, usize, Vec<(i64, i64, bool)>)> {
    (
        4usize..10,
        4usize..10,
        proptest::collection::vec((-1i64..=1, -1i64..=1, proptest::bool::ANY), 1..5),
    )
}

fn build_kernel(rows: usize, cols: usize, refs: &[(i64, i64, bool)]) -> Kernel {
    let a = ArrayDecl::new("a", &[rows, cols], 4);
    let body = refs
        .iter()
        .map(|&(c0, c1, w)| {
            let subs = vec![AffineExpr::var(0) + c0, AffineExpr::var(1) + c1];
            if w {
                ArrayRef::write(ArrayId(0), subs)
            } else {
                ArrayRef::read(ArrayId(0), subs)
            }
        })
        .collect();
    let nest = LoopNest {
        loops: vec![Loop::new(1, rows as i64 - 2), Loop::new(1, cols as i64 - 2)],
        refs: body,
    };
    Kernel::new("Gen", vec![a], nest)
}

fn render_source(rows: usize, cols: usize, refs: &[(i64, i64, bool)]) -> String {
    let mut s = format!(
        "kernel Gen\narray a[{rows}][{cols}] elem 4\nfor i = 1 .. {}\nfor j = 1 .. {}\n",
        rows - 2,
        cols - 2
    );
    let term = |v: &str, c: i64| match c.cmp(&0) {
        std::cmp::Ordering::Equal => v.to_string(),
        std::cmp::Ordering::Greater => format!("{v}+{c}"),
        std::cmp::Ordering::Less => format!("{v}{c}"),
    };
    for &(c0, c1, w) in refs {
        s.push_str(&format!(
            "{} a[{}][{}]\n",
            if w { "write" } else { "read" },
            term("i", c0),
            term("j", c1)
        ));
    }
    s
}

fn trace_multiset(kernel: &Kernel) -> BTreeMap<(u64, bool), usize> {
    let layout = DataLayout::natural(kernel);
    let mut m = BTreeMap::new();
    for a in TraceGen::new(kernel, &layout) {
        *m.entry((a.addr, a.kind == loopir::AccessKind::Write))
            .or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parser_round_trips_random_stencils((rows, cols, refs) in arb_stencil()) {
        let direct = build_kernel(rows, cols, &refs);
        let parsed = parse_kernel(&render_source(rows, cols, &refs))
            .expect("rendered source is valid");
        prop_assert_eq!(&parsed.arrays, &direct.arrays);
        prop_assert_eq!(&parsed.nest, &direct.nest);
    }

    #[test]
    fn traces_stay_within_the_arrays((rows, cols, refs) in arb_stencil()) {
        let kernel = build_kernel(rows, cols, &refs);
        let layout = DataLayout::natural(&kernel);
        let end = rows as u64 * cols as u64 * 4;
        for access in TraceGen::new(&kernel, &layout) {
            prop_assert!(access.addr + access.size as u64 <= end);
        }
    }

    #[test]
    fn interchange_preserves_the_access_multiset((rows, cols, refs) in arb_stencil()) {
        let kernel = build_kernel(rows, cols, &refs);
        let swapped = interchange(&kernel, 0, 1);
        prop_assert_eq!(trace_multiset(&kernel), trace_multiset(&swapped));
    }

    #[test]
    fn tiling_preserves_counts_at_any_size(
        (rows, cols, refs) in arb_stencil(),
        b in 1u64..8,
    ) {
        let kernel = build_kernel(rows, cols, &refs);
        let tiled = tile_all(&kernel, b);
        prop_assert_eq!(trace_multiset(&kernel), trace_multiset(&tiled));
    }

    #[test]
    fn read_trip_count_matches_the_trace((rows, cols, refs) in arb_stencil()) {
        let kernel = build_kernel(rows, cols, &refs);
        let layout = DataLayout::natural(&kernel);
        let reads = TraceGen::new(&kernel, &layout)
            .filter(|a| a.kind == loopir::AccessKind::Read)
            .count() as u64;
        prop_assert_eq!(kernel.read_trip_count(), Some(reads));
    }
}
