//! Affine expressions over loop induction variables.
//!
//! An [`AffineExpr`] represents `c0*i0 + c1*i1 + … + k` where `i0, i1, …`
//! are the induction variables of the enclosing [`LoopNest`](crate::LoopNest)
//! from outermost to innermost. The paper's "uniformly generated" reference
//! test (after Wolf & Lam) compares the linear parts `H` of two expressions
//! and their constant parts `c`.

use std::fmt;

/// An affine function of the loop induction variables: `Σ coeffs[d]·i_d + constant`.
///
/// The coefficient vector is indexed by loop depth (0 = outermost). Missing
/// trailing coefficients are treated as zero, so an expression built for a
/// shallow nest remains valid when loops are added around or inside it as
/// long as depths are remapped via [`AffineExpr::remap_depths`].
///
/// # Example
///
/// ```
/// use loopir::AffineExpr;
/// // The subscript `i - 1` in `a[i-1][j]` at depth 0:
/// let e = AffineExpr::var(0) - 1;
/// assert_eq!(e.eval(&[5, 9]), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    coeffs: Vec<i64>,
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `k`.
    pub fn constant(k: i64) -> Self {
        AffineExpr {
            coeffs: Vec::new(),
            constant: k,
        }
    }

    /// The induction variable of the loop at `depth` (0 = outermost).
    pub fn var(depth: usize) -> Self {
        let mut coeffs = vec![0; depth + 1];
        coeffs[depth] = 1;
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Builds `coeff * i_depth + k` in one step.
    pub fn linear(depth: usize, coeff: i64, k: i64) -> Self {
        let mut coeffs = vec![0; depth + 1];
        coeffs[depth] = coeff;
        AffineExpr {
            coeffs,
            constant: k,
        }
    }

    /// The coefficient of the induction variable at `depth`.
    pub fn coeff(&self, depth: usize) -> i64 {
        self.coeffs.get(depth).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// The linear part as a dense coefficient vector of length `depth_count`.
    ///
    /// Two references are *uniformly generated* when their linear parts are
    /// equal; this vector is what gets compared.
    pub fn linear_part(&self, depth_count: usize) -> Vec<i64> {
        (0..depth_count).map(|d| self.coeff(d)).collect()
    }

    /// True if no induction variable has a non-zero coefficient.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Evaluates the expression at the iteration point `ivs`
    /// (`ivs[d]` = current value of the loop at depth `d`).
    ///
    /// # Panics
    ///
    /// Panics if `ivs` is shorter than the deepest referenced variable.
    pub fn eval(&self, ivs: &[i64]) -> i64 {
        let mut acc = self.constant;
        for (d, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                acc += c * ivs[d];
            }
        }
        acc
    }

    /// Returns a copy with every referenced depth `d` replaced by `map(d)`.
    ///
    /// Used by loop transformations (tiling adds `k` tile-controlling loops
    /// in front, shifting every original depth by `k`; interchange swaps two
    /// depths).
    pub fn remap_depths(&self, map: impl Fn(usize) -> usize) -> Self {
        let mut out = AffineExpr::constant(self.constant);
        for (d, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                let nd = map(d);
                if out.coeffs.len() <= nd {
                    out.coeffs.resize(nd + 1, 0);
                }
                out.coeffs[nd] += c;
            }
        }
        out
    }

    /// The highest depth with a non-zero coefficient, if any.
    pub fn max_depth(&self) -> Option<usize> {
        self.coeffs.iter().rposition(|&c| c != 0)
    }
}

impl std::ops::Add for AffineExpr {
    type Output = AffineExpr;
    fn add(self, rhs: AffineExpr) -> AffineExpr {
        let mut coeffs = self.coeffs;
        if coeffs.len() < rhs.coeffs.len() {
            coeffs.resize(rhs.coeffs.len(), 0);
        }
        for (d, c) in rhs.coeffs.iter().enumerate() {
            coeffs[d] += c;
        }
        AffineExpr {
            coeffs,
            constant: self.constant + rhs.constant,
        }
    }
}

impl std::ops::Add<i64> for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: i64) -> AffineExpr {
        self.constant += rhs;
        self
    }
}

impl std::ops::Sub<i64> for AffineExpr {
    type Output = AffineExpr;
    fn sub(mut self, rhs: i64) -> AffineExpr {
        self.constant -= rhs;
        self
    }
}

impl std::ops::Mul<i64> for AffineExpr {
    type Output = AffineExpr;
    fn mul(mut self, rhs: i64) -> AffineExpr {
        for c in &mut self.coeffs {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (d, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if wrote {
                write!(f, "{}", if c > 0 { " + " } else { " - " })?;
            } else if c < 0 {
                write!(f, "-")?;
            }
            if c.abs() != 1 {
                write!(f, "{}*", c.abs())?;
            }
            write!(f, "i{d}")?;
            wrote = true;
        }
        if !wrote {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_evaluates_to_itself() {
        assert_eq!(AffineExpr::constant(7).eval(&[]), 7);
        assert!(AffineExpr::constant(7).is_constant());
    }

    #[test]
    fn var_picks_the_right_induction_variable() {
        assert_eq!(AffineExpr::var(1).eval(&[10, 20, 30]), 20);
    }

    #[test]
    fn arithmetic_composes() {
        let e = AffineExpr::var(0) * 2 + AffineExpr::var(1) - 3;
        assert_eq!(e.eval(&[4, 5]), 2 * 4 + 5 - 3);
        assert_eq!(e.coeff(0), 2);
        assert_eq!(e.coeff(1), 1);
        assert_eq!(e.constant_term(), -3);
    }

    #[test]
    fn linear_part_pads_with_zeros() {
        let e = AffineExpr::var(0);
        assert_eq!(e.linear_part(3), vec![1, 0, 0]);
    }

    #[test]
    fn remap_depths_shifts_coefficients() {
        let e = AffineExpr::var(0) * 3 + AffineExpr::var(1) + 5;
        let shifted = e.remap_depths(|d| d + 2);
        assert_eq!(shifted.coeff(2), 3);
        assert_eq!(shifted.coeff(3), 1);
        assert_eq!(shifted.constant_term(), 5);
        assert_eq!(shifted.coeff(0), 0);
    }

    #[test]
    fn remap_depths_can_merge_variables() {
        let e = AffineExpr::var(0) + AffineExpr::var(1);
        let merged = e.remap_depths(|_| 0);
        assert_eq!(merged.coeff(0), 2);
    }

    #[test]
    fn max_depth_reports_deepest_use() {
        assert_eq!(AffineExpr::constant(1).max_depth(), None);
        assert_eq!((AffineExpr::var(2) + 1).max_depth(), Some(2));
    }

    #[test]
    fn display_is_readable() {
        let e = AffineExpr::var(0) - 1;
        assert_eq!(format!("{e}"), "i0 - 1");
        let e2 = AffineExpr::var(1) * -2 + 3;
        assert_eq!(format!("{e2}"), "-2*i1 + 3");
        assert_eq!(format!("{}", AffineExpr::constant(0)), "0");
    }
}
