//! Execution-order address trace generation.
//!
//! [`TraceGen`] walks a kernel's loop nest like an odometer (outermost loop
//! slowest) and, at each iteration point, emits one [`MemoryAccess`] per body
//! reference in program order. This is the input format of the `memsim`
//! cache simulator and replaces the closed-form miss-rate expressions the
//! paper used (its §4.1 notes a trace-driven simulator is the interchangeable
//! alternative).

use crate::layout::DataLayout;
use crate::nest::{AccessKind, ArrayId, Kernel};

/// One memory access of the generated trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemoryAccess {
    /// Byte address of the first byte touched.
    pub addr: u64,
    /// Access size in bytes (the element size of the referenced array).
    pub size: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// The array this access belongs to (for partitioning studies such as
    /// scratchpad assignment).
    pub array: ArrayId,
}

/// Iterator over the address trace of a kernel under a given layout.
///
/// Loops whose bounds depend on outer induction variables (tiled nests) are
/// supported; a loop level that evaluates to an empty range at some outer
/// iteration simply contributes no iterations there.
///
/// # Example
///
/// ```
/// use loopir::{kernels, DataLayout, TraceGen, AccessKind};
///
/// let k = kernels::matadd(6);
/// let layout = DataLayout::natural(&k);
/// let reads = TraceGen::new(&k, &layout)
///     .filter(|a| a.kind == AccessKind::Read)
///     .count();
/// assert_eq!(reads, 6 * 6 * 2); // a[i][j] and b[i][j]
/// ```
pub struct TraceGen<'a> {
    kernel: &'a Kernel,
    layout: &'a DataLayout,
    /// Current induction-variable values; `None` once exhausted.
    ivs: Option<Vec<i64>>,
    /// Index of the next body reference to emit at the current point.
    next_ref: usize,
}

impl<'a> TraceGen<'a> {
    /// Starts a trace at the first iteration point of the nest.
    pub fn new(kernel: &'a Kernel, layout: &'a DataLayout) -> Self {
        let ivs = first_point(kernel);
        TraceGen {
            kernel,
            layout,
            ivs,
            next_ref: 0,
        }
    }

    /// Collects the whole trace, keeping only reads if `reads_only`.
    ///
    /// The paper's models count only reads ("reads dominate processor cache
    /// accesses"), so most callers pass `true`.
    pub fn collect_trace(
        kernel: &'a Kernel,
        layout: &'a DataLayout,
        reads_only: bool,
    ) -> Vec<MemoryAccess> {
        TraceGen::new(kernel, layout)
            .filter(|a| !reads_only || a.kind == AccessKind::Read)
            .collect()
    }
}

/// Finds the first non-empty iteration point, or `None` if the whole nest is
/// empty.
fn first_point(kernel: &Kernel) -> Option<Vec<i64>> {
    let loops = &kernel.nest.loops;
    let mut ivs = vec![0i64; loops.len()];
    descend(kernel, &mut ivs, 0).then_some(ivs)
}

/// Initialises levels `from..` to their lower bounds; returns `false` if some
/// level is empty at the current outer values (caller must advance an outer
/// level).
fn descend(kernel: &Kernel, ivs: &mut [i64], from: usize) -> bool {
    let loops = &kernel.nest.loops;
    let mut level = from;
    while level < loops.len() {
        let lo = loops[level].lower.eval(&ivs[..level]);
        let hi = loops[level].upper.eval(&ivs[..level]);
        if lo > hi {
            // Empty range at this outer point: advance the enclosing level.
            if level == 0 {
                return false;
            }
            if !advance(kernel, ivs, level - 1) {
                return false;
            }
            // `advance` already re-descended below `level - 1`.
            return true;
        }
        ivs[level] = lo;
        level += 1;
    }
    true
}

/// Advances level `level` by its step, cascading to outer levels on
/// exhaustion and re-descending inner levels. Returns `false` when the whole
/// nest is exhausted.
fn advance(kernel: &Kernel, ivs: &mut [i64], level: usize) -> bool {
    let loops = &kernel.nest.loops;
    let mut l = level as isize;
    loop {
        if l < 0 {
            return false;
        }
        let lu = l as usize;
        let hi = loops[lu].upper.eval(&ivs[..lu]);
        let next = ivs[lu] + loops[lu].step;
        if next <= hi {
            ivs[lu] = next;
            return descend(kernel, ivs, lu + 1);
        }
        l -= 1;
    }
}

impl Iterator for TraceGen<'_> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        let ivs = self.ivs.as_mut()?;
        let refs = &self.kernel.nest.refs;
        if refs.is_empty() {
            self.ivs = None;
            return None;
        }
        let r = &refs[self.next_ref];
        let subs: Vec<i64> = r.subscripts.iter().map(|s| s.eval(ivs)).collect();
        let addr = self.layout.element_address(self.kernel, r.array, &subs);
        let access = MemoryAccess {
            addr,
            size: self.kernel.array(r.array).elem_size as u32,
            kind: r.kind,
            array: r.array,
        };
        self.next_ref += 1;
        if self.next_ref == refs.len() {
            self.next_ref = 0;
            let depth = self.kernel.nest.loops.len();
            let done = if depth == 0 {
                true
            } else {
                !advance(self.kernel, ivs, depth - 1)
            };
            if done {
                self.ivs = None;
            }
        }
        Some(access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::nest::{ArrayDecl, ArrayId, ArrayRef, Bound, Kernel, Loop, LoopNest};

    fn simple_1d(n: i64) -> Kernel {
        let a = ArrayDecl::new("a", &[n as usize], 4);
        let nest = LoopNest {
            loops: vec![Loop::new(0, n - 1)],
            refs: vec![ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0)])],
        };
        Kernel::new("seq", vec![a], nest)
    }

    #[test]
    fn sequential_scan_emits_stride_4_addresses() {
        let k = simple_1d(5);
        let l = DataLayout::natural(&k);
        let addrs: Vec<u64> = TraceGen::new(&k, &l).map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 4, 8, 12, 16]);
    }

    #[test]
    fn refs_emitted_in_program_order_per_point() {
        let a = ArrayDecl::new("a", &[4], 4);
        let b = ArrayDecl::new("b", &[4], 4);
        let nest = LoopNest {
            loops: vec![Loop::new(0, 1)],
            refs: vec![
                ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0)]),
                ArrayRef::read(ArrayId(1), vec![AffineExpr::var(0)]),
                ArrayRef::write(ArrayId(0), vec![AffineExpr::var(0)]),
            ],
        };
        let k = Kernel::new("ab", vec![a, b], nest);
        let l = DataLayout::natural(&k);
        let trace: Vec<_> = TraceGen::new(&k, &l).collect();
        assert_eq!(trace.len(), 6);
        assert_eq!(trace[0].addr, 0); // a[0]
        assert_eq!(trace[1].addr, 16); // b[0]
        assert_eq!(trace[2].kind, AccessKind::Write);
        assert_eq!(trace[3].addr, 4); // a[1]
    }

    #[test]
    fn two_d_row_major_order() {
        let a = ArrayDecl::new("a", &[3, 3], 1);
        let nest = LoopNest {
            loops: vec![Loop::new(0, 2), Loop::new(0, 2)],
            refs: vec![ArrayRef::read(
                ArrayId(0),
                vec![AffineExpr::var(0), AffineExpr::var(1)],
            )],
        };
        let k = Kernel::new("grid", vec![a], nest);
        let l = DataLayout::natural(&k);
        let addrs: Vec<u64> = TraceGen::new(&k, &l).map(|a| a.addr).collect();
        assert_eq!(addrs, (0..9).collect::<Vec<u64>>());
    }

    #[test]
    fn affine_bounds_make_triangular_nests() {
        // for i in 0..=3 { for j in i..=3 { touch a[j] } } -> 4+3+2+1 = 10
        let a = ArrayDecl::new("a", &[4], 1);
        let nest = LoopNest {
            loops: vec![
                Loop::new(0, 3),
                Loop {
                    lower: Bound::Affine(AffineExpr::var(0)),
                    upper: Bound::Const(3),
                    step: 1,
                },
            ],
            refs: vec![ArrayRef::read(ArrayId(0), vec![AffineExpr::var(1)])],
        };
        let k = Kernel::new("tri", vec![a], nest);
        let l = DataLayout::natural(&k);
        assert_eq!(TraceGen::new(&k, &l).count(), 10);
    }

    #[test]
    fn min_bounds_cap_partial_tiles() {
        // for t in 0..=4 step 2 { for i in t..=min(t+1, 4) } -> 2+2+1 = 5
        let a = ArrayDecl::new("a", &[5], 1);
        let nest = LoopNest {
            loops: vec![
                Loop::with_step(0, 4, 2),
                Loop {
                    lower: Bound::Affine(AffineExpr::var(0)),
                    upper: Bound::Min(AffineExpr::var(0) + 1, 4),
                    step: 1,
                },
            ],
            refs: vec![ArrayRef::read(ArrayId(0), vec![AffineExpr::var(1)])],
        };
        let k = Kernel::new("strip", vec![a], nest);
        let l = DataLayout::natural(&k);
        let addrs: Vec<u64> = TraceGen::new(&k, &l).map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reads_only_filter() {
        let a = ArrayDecl::new("a", &[4], 4);
        let nest = LoopNest {
            loops: vec![Loop::new(0, 3)],
            refs: vec![
                ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0)]),
                ArrayRef::write(ArrayId(0), vec![AffineExpr::var(0)]),
            ],
        };
        let k = Kernel::new("rw", vec![a], nest);
        let l = DataLayout::natural(&k);
        assert_eq!(TraceGen::collect_trace(&k, &l, true).len(), 4);
        assert_eq!(TraceGen::collect_trace(&k, &l, false).len(), 8);
    }

    #[test]
    fn empty_inner_ranges_are_skipped() {
        // for i in 0..=2 { for j in i..=1 } -> i=0: j=0,1; i=1: j=1; i=2: none
        let a = ArrayDecl::new("a", &[3], 1);
        let nest = LoopNest {
            loops: vec![
                Loop::new(0, 2),
                Loop {
                    lower: Bound::Affine(AffineExpr::var(0)),
                    upper: Bound::Const(1),
                    step: 1,
                },
            ],
            refs: vec![ArrayRef::read(ArrayId(0), vec![AffineExpr::var(1)])],
        };
        let k = Kernel::new("shrink", vec![a], nest);
        let l = DataLayout::natural(&k);
        let addrs: Vec<u64> = TraceGen::new(&k, &l).map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 1, 1]);
    }
}
