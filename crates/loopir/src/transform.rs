//! Loop transformations: tiling (blocking) and interchange.
//!
//! Tiling follows Wolf & Lam (PLDI'91), the paper's reference \[9\]: the first
//! `k` loops of a rectangular nest are strip-mined into tile-controlling
//! loops and element loops, and the element loops are pushed inside. The
//! paper's Example 3 —
//!
//! ```text
//! for ti = 1, n, 64            |  for i = 1, n
//!   for tj = 1, n, 64          |    for j = 1, n
//!     for i = ti, min(ti+63,n) |      a[i,j] = b[j,i]
//!       for j = tj, min(tj+63,n)
//!         a[i,j] = b[j,i]
//! ```
//!
//! — is exactly what [`tile`] produces for `tile_sizes = [64, 64]`.

use crate::nest::{Bound, Kernel, Loop, LoopNest};
use crate::AffineExpr;

/// Tiles the outermost `tile_sizes.len()` loops of a kernel.
///
/// `tile_sizes[d]` is the tile extent (in iterations) of loop `d`. A tile
/// size of 1 degenerates to the original loop order for that level (the
/// paper treats tiling size `B = 1` as "untiled"). The transformed nest has
/// `k` extra loops in front; every reference's subscripts are depth-remapped
/// accordingly, so traces generated from the result visit exactly the same
/// addresses in tiled order.
///
/// # Panics
///
/// Panics if more tile sizes than loops are given, if any tile size is 0,
/// if any tiled loop has non-constant bounds (only rectangular nests can be
/// tiled by this strip-mine), or if any tiled loop has a non-unit step.
pub fn tile(kernel: &Kernel, tile_sizes: &[u64]) -> Kernel {
    let n = kernel.nest.loops.len();
    let k = tile_sizes.len();
    assert!(k <= n, "cannot tile {k} loops of a depth-{n} nest");
    assert!(tile_sizes.iter().all(|&b| b > 0), "tile sizes must be > 0");

    if k == 0 || tile_sizes.iter().all(|&b| b == 1) {
        // B = 1 along every tiled dimension is the identity transform; avoid
        // inserting degenerate single-iteration tile loops.
        return kernel.clone();
    }

    let mut loops = Vec::with_capacity(n + k);
    // Tile-controlling loops (depths 0..k in the new nest).
    for (d, &b) in tile_sizes.iter().enumerate() {
        let l = &kernel.nest.loops[d];
        let lo = l
            .lower
            .as_const()
            .expect("tiled loop must have constant bounds");
        let hi = l
            .upper
            .as_const()
            .expect("tiled loop must have constant bounds");
        assert_eq!(l.step, 1, "tiled loop must have unit step");
        loops.push(Loop::with_step(lo, hi, b as i64));
    }
    // Element loops for the tiled levels (new depths k..2k):
    // for i_d = t_d ..= min(t_d + B - 1, hi_d).
    for (d, &b) in tile_sizes.iter().enumerate() {
        let hi = kernel.nest.loops[d].upper.as_const().unwrap();
        loops.push(Loop {
            lower: Bound::Affine(AffineExpr::var(d)),
            upper: Bound::Min(AffineExpr::var(d) + (b as i64 - 1), hi),
            step: 1,
        });
    }
    // Remaining untouched loops shift from depth d to depth k + d; their
    // bounds may reference outer variables, which also shift by k.
    for l in &kernel.nest.loops[k..] {
        loops.push(Loop {
            lower: l.lower.remap_depths(|d| d + k),
            upper: l.upper.remap_depths(|d| d + k),
            step: l.step,
        });
    }

    // Original depth d now lives at new depth k + d (tiled levels' element
    // loops occupy k..2k in original order; untouched loops follow).
    let refs = kernel
        .nest
        .refs
        .iter()
        .map(|r| {
            let mut r = r.clone();
            for s in &mut r.subscripts {
                *s = s.remap_depths(|d| d + k);
            }
            r
        })
        .collect();

    Kernel::new(
        format!("{}-tiled{:?}", kernel.name, tile_sizes),
        kernel.arrays.clone(),
        LoopNest { loops, refs },
    )
}

/// Tiles the two outermost loops with the same tile size `b` — the paper's
/// single "tiling size B" knob used throughout its evaluation.
///
/// For depth-1 nests only the single loop is tiled. `b = 1` returns the
/// kernel unchanged.
///
/// # Panics
///
/// Panics under the same conditions as [`tile`].
pub fn tile_square(kernel: &Kernel, b: u64) -> Kernel {
    if b <= 1 {
        return kernel.clone();
    }
    let depth = kernel.nest.loops.len().min(2);
    tile(kernel, &vec![b; depth])
}

/// Tiles *every* loop of the nest with the same tile size `b` — classic
/// blocking; for matrix multiplication this is the (i, j, k) tiling whose
/// B×B×B working set is what actually fits in a small cache.
///
/// `b = 1` returns the kernel unchanged.
///
/// # Panics
///
/// Panics under the same conditions as [`tile`].
pub fn tile_all(kernel: &Kernel, b: u64) -> Kernel {
    if b <= 1 {
        return kernel.clone();
    }
    tile(kernel, &vec![b; kernel.nest.loops.len()])
}

/// Interchanges loops `d1` and `d2` of a rectangular nest.
///
/// # Panics
///
/// Panics if either depth is out of range, or either loop's bounds are not
/// constant (interchange of non-rectangular nests is not legal in general).
pub fn interchange(kernel: &Kernel, d1: usize, d2: usize) -> Kernel {
    let n = kernel.nest.loops.len();
    assert!(d1 < n && d2 < n, "interchange depth out of range");
    for &d in &[d1, d2] {
        let l = &kernel.nest.loops[d];
        assert!(
            l.lower.as_const().is_some() && l.upper.as_const().is_some(),
            "interchange requires constant bounds at depth {d}"
        );
    }
    let mut loops = kernel.nest.loops.clone();
    loops.swap(d1, d2);
    let map = move |d: usize| {
        if d == d1 {
            d2
        } else if d == d2 {
            d1
        } else {
            d
        }
    };
    let refs = kernel
        .nest
        .refs
        .iter()
        .map(|r| {
            let mut r = r.clone();
            for s in &mut r.subscripts {
                *s = s.remap_depths(map);
            }
            r
        })
        .collect();
    Kernel::new(
        format!("{}-swap({d1},{d2})", kernel.name),
        kernel.arrays.clone(),
        LoopNest { loops, refs },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;
    use crate::nest::{ArrayDecl, ArrayId, ArrayRef};
    use crate::trace::TraceGen;
    use std::collections::BTreeMap;

    /// `a[i][j] = b[j][i]` over n×n — the paper's Example 3.
    fn transpose_kernel(n: usize) -> Kernel {
        let a = ArrayDecl::new("a", &[n, n], 4);
        let b = ArrayDecl::new("b", &[n, n], 4);
        let nest = LoopNest {
            loops: vec![Loop::new(0, n as i64 - 1), Loop::new(0, n as i64 - 1)],
            refs: vec![
                ArrayRef::read(ArrayId(1), vec![AffineExpr::var(1), AffineExpr::var(0)]),
                ArrayRef::write(ArrayId(0), vec![AffineExpr::var(0), AffineExpr::var(1)]),
            ],
        };
        Kernel::new("transpose", vec![a, b], nest)
    }

    fn address_multiset(k: &Kernel) -> BTreeMap<u64, usize> {
        let l = DataLayout::natural(k);
        let mut m = BTreeMap::new();
        for acc in TraceGen::new(k, &l) {
            *m.entry(acc.addr).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn tiling_preserves_the_address_multiset() {
        let k = transpose_kernel(7);
        for b in [2u64, 3, 4, 8] {
            let t = tile_square(&k, b);
            assert_eq!(
                address_multiset(&k),
                address_multiset(&t),
                "tile size {b} changed the set of touched addresses"
            );
        }
    }

    #[test]
    fn tiling_changes_visit_order() {
        let k = transpose_kernel(6);
        let t = tile_square(&k, 2);
        let l = DataLayout::natural(&k);
        let orig: Vec<u64> = TraceGen::new(&k, &l).map(|a| a.addr).collect();
        let lt = DataLayout::natural(&t);
        let tiled: Vec<u64> = TraceGen::new(&t, &lt).map(|a| a.addr).collect();
        assert_eq!(orig.len(), tiled.len());
        assert_ne!(orig, tiled);
    }

    #[test]
    fn tile_size_one_is_identity() {
        let k = transpose_kernel(5);
        let t = tile_square(&k, 1);
        assert_eq!(k, t);
    }

    #[test]
    fn partial_tiles_are_capped() {
        // n = 5, b = 2: tiles {0,1},{2,3},{4}.
        let k = transpose_kernel(5);
        let t = tile_square(&k, 2);
        assert_eq!(t.nest.loops.len(), 4);
        let l = DataLayout::natural(&t);
        assert_eq!(TraceGen::new(&t, &l).count(), 5 * 5 * 2);
    }

    #[test]
    fn tiled_nest_structure_matches_example_3() {
        let k = transpose_kernel(8);
        let t = tile(&k, &[4, 4]);
        // ti, tj tile loops with step 4.
        assert_eq!(t.nest.loops[0].step, 4);
        assert_eq!(t.nest.loops[1].step, 4);
        // Element loop i: lower = ti, upper = min(ti+3, 7).
        assert_eq!(t.nest.loops[2].lower, Bound::Affine(AffineExpr::var(0)));
        assert_eq!(t.nest.loops[2].upper, Bound::Min(AffineExpr::var(0) + 3, 7));
        // b[j][i] becomes b[i3][i2].
        assert_eq!(t.nest.refs[0].subscripts[0], AffineExpr::var(3));
        assert_eq!(t.nest.refs[0].subscripts[1], AffineExpr::var(2));
    }

    #[test]
    fn interchange_swaps_traversal_order() {
        let k = transpose_kernel(4);
        let sw = interchange(&k, 0, 1);
        let lw = DataLayout::natural(&sw);
        // After interchange the read b[j][i] becomes row-major sequential.
        let first: Vec<u64> = TraceGen::new(&sw, &lw)
            .filter(|a| a.kind == crate::AccessKind::Read)
            .take(4)
            .map(|a| a.addr)
            .collect();
        let base = 4 * 4 * 4; // b starts after a
        assert_eq!(
            first,
            vec![
                base as u64,
                base as u64 + 4,
                base as u64 + 8,
                base as u64 + 12
            ]
        );
    }

    #[test]
    fn interchange_is_involutive() {
        let k = transpose_kernel(5);
        let twice = interchange(&interchange(&k, 0, 1), 0, 1);
        assert_eq!(k.nest, twice.nest);
    }

    #[test]
    #[should_panic(expected = "unit step")]
    fn tiling_a_tiled_nest_panics() {
        let k = transpose_kernel(4);
        let t = tile_square(&k, 2);
        // The tile-controlling loops have step 2; re-tiling is rejected.
        let _ = tile(&t, &[2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "constant bounds")]
    fn tiling_affine_bounds_panics() {
        let a = ArrayDecl::new("a", &[6], 1);
        let nest = LoopNest {
            loops: vec![
                Loop::new(0, 5),
                Loop {
                    lower: Bound::Affine(AffineExpr::var(0)),
                    upper: Bound::Const(5),
                    step: 1,
                },
            ],
            refs: vec![ArrayRef::read(ArrayId(0), vec![AffineExpr::var(1)])],
        };
        let k = Kernel::new("tri", vec![a], nest);
        let _ = tile(&k, &[2, 2]);
    }

    #[test]
    fn tile_one_loop_of_deep_nest() {
        let k = transpose_kernel(6);
        let t = tile(&k, &[3]);
        assert_eq!(t.nest.loops.len(), 3);
        assert_eq!(address_multiset(&k), address_multiset(&t));
    }
}
