//! Affine loop-nest intermediate representation for embedded memory studies.
//!
//! This crate provides the workload substrate for the DAC'99
//! *Memory Exploration for Low Power, Embedded Systems* reproduction:
//!
//! * an IR for perfectly nested affine loops over multi-dimensional arrays
//!   ([`Kernel`], [`LoopNest`], [`ArrayRef`], [`AffineExpr`]),
//! * loop transformations — [tiling](transform::tile) (strip-mine +
//!   interchange, after Wolf & Lam) and [interchange](transform::interchange),
//! * [data layouts](layout::DataLayout) mapping arrays to off-chip byte
//!   addresses, including padded layouts produced by placement optimisers,
//! * an address [trace generator](trace::TraceGen) that walks the nest in
//!   execution order and emits one memory access per array reference, and
//! * the paper's [benchmark kernels](kernels) (Compress, Matrix
//!   Multiplication, PDE, SOR, Dequant, Matrix Addition, Transpose).
//!
//! # Example
//!
//! ```
//! use loopir::kernels;
//! use loopir::layout::DataLayout;
//! use loopir::trace::TraceGen;
//!
//! let kernel = kernels::compress(31);
//! let layout = DataLayout::natural(&kernel);
//! let trace: Vec<_> = TraceGen::new(&kernel, &layout).collect();
//! // 31*31 iterations, 4 reads + 1 write each.
//! assert_eq!(trace.len(), 31 * 31 * 5);
//! ```

pub mod expr;
pub mod kernels;
pub mod layout;
pub mod nest;
pub mod parse;
pub mod trace;
pub mod transform;

pub use expr::AffineExpr;
pub use kernels::all_paper_kernels;
pub use layout::DataLayout;
pub use nest::{AccessKind, ArrayDecl, ArrayId, ArrayRef, Bound, Kernel, Loop, LoopNest};
pub use parse::parse_kernel;
pub use trace::{MemoryAccess, TraceGen};
