//! The DAC'99 benchmark kernels.
//!
//! The paper evaluates on five loop kernels — **Compress**, **Matrix
//! Multiplication**, **PDE**, **SOR**, **Dequant** — each over a 31×31
//! iteration space, plus the 6×6 **Matrix Addition** placement example
//! (Example 2) and the **Transpose** tiling example (Example 3).
//!
//! All kernels use 4-byte `int` elements, matching the `int a[32,32]`
//! declaration in the paper's Example 1. Loop bodies are represented purely
//! by their array references (reads in evaluation order, then writes), since
//! the exploration models consume only the memory behaviour.

use crate::expr::AffineExpr;
use crate::nest::{ArrayDecl, ArrayId, ArrayRef, Kernel, Loop, LoopNest};

/// Element size used throughout the paper's kernels (C `int`).
pub const ELEM: usize = 4;

fn v(d: usize) -> AffineExpr {
    AffineExpr::var(d)
}

/// The paper's Example 1:
///
/// ```text
/// int a[32,32]
/// for i = 1, 31
///   for j = 1, 31
///     a[i,j] = a[i,j] - a[i-1,j] - a[i,j-1] - 2*a[i-1,j-1]
/// ```
///
/// Four reads and one write per iteration; two reference classes
/// ({`a[i-1,j-1]`, `a[i-1,j]`} and {`a[i,j-1]`, `a[i,j]`}).
pub fn compress(n: i64) -> Kernel {
    let a = ArrayDecl::new("a", &[n as usize + 1, n as usize + 1], ELEM);
    let id = ArrayId(0);
    let nest = LoopNest {
        loops: vec![Loop::new(1, n), Loop::new(1, n)],
        refs: vec![
            ArrayRef::read(id, vec![v(0), v(1)]),
            ArrayRef::read(id, vec![v(0) - 1, v(1)]),
            ArrayRef::read(id, vec![v(0), v(1) - 1]),
            ArrayRef::read(id, vec![v(0) - 1, v(1) - 1]),
            ArrayRef::write(id, vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Compress", vec![a], nest)
}

/// Square matrix multiplication `c[i,j] += a[i,k] * b[k,j]` with an `ijk`
/// nest over `n`×`n` matrices (the paper's 31×31 iteration space refers to
/// the `i`/`j` loops).
///
/// Three reads (`c[i,j]`, `a[i,k]`, `b[k,j]`) and one write per innermost
/// iteration.
pub fn matmul(n: i64) -> Kernel {
    let dims = &[n as usize, n as usize];
    let a = ArrayDecl::new("a", dims, ELEM);
    let b = ArrayDecl::new("b", dims, ELEM);
    let c = ArrayDecl::new("c", dims, ELEM);
    let nest = LoopNest {
        loops: vec![
            Loop::new(0, n - 1),
            Loop::new(0, n - 1),
            Loop::new(0, n - 1),
        ],
        refs: vec![
            ArrayRef::read(ArrayId(2), vec![v(0), v(1)]),
            ArrayRef::read(ArrayId(0), vec![v(0), v(2)]),
            ArrayRef::read(ArrayId(1), vec![v(2), v(1)]),
            ArrayRef::write(ArrayId(2), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("MatMult", vec![a, b, c], nest)
}

/// A 2-D PDE solver step (Jacobi relaxation from Wolf & Lam's benchmark
/// suite): `b[i,j] = (a[i-1,j] + a[i+1,j] + a[i,j-1] + a[i,j+1]) / 4`.
///
/// Two arrays (so references split into *cases* as well as classes); four
/// reads and one write per iteration over the interior `n`×`n` points.
pub fn pde(n: i64) -> Kernel {
    let ext = n as usize + 2;
    let a = ArrayDecl::new("a", &[ext, ext], ELEM);
    let b = ArrayDecl::new("b", &[ext, ext], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(1, n), Loop::new(1, n)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0) - 1, v(1)]),
            ArrayRef::read(ArrayId(0), vec![v(0) + 1, v(1)]),
            ArrayRef::read(ArrayId(0), vec![v(0), v(1) - 1]),
            ArrayRef::read(ArrayId(0), vec![v(0), v(1) + 1]),
            ArrayRef::write(ArrayId(1), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("PDE", vec![a, b], nest)
}

/// Successive over-relaxation:
/// `a[i,j] = 0.2 * (a[i,j] + a[i-1,j] + a[i+1,j] + a[i,j-1] + a[i,j+1])`.
///
/// Five reads and one write per iteration over the interior `n`×`n` points
/// of a single array (in-place stencil).
pub fn sor(n: i64) -> Kernel {
    let ext = n as usize + 2;
    let a = ArrayDecl::new("a", &[ext, ext], ELEM);
    let id = ArrayId(0);
    let nest = LoopNest {
        loops: vec![Loop::new(1, n), Loop::new(1, n)],
        refs: vec![
            ArrayRef::read(id, vec![v(0), v(1)]),
            ArrayRef::read(id, vec![v(0) - 1, v(1)]),
            ArrayRef::read(id, vec![v(0) + 1, v(1)]),
            ArrayRef::read(id, vec![v(0), v(1) - 1]),
            ArrayRef::read(id, vec![v(0), v(1) + 1]),
            ArrayRef::write(id, vec![v(0), v(1)]),
        ],
    };
    Kernel::new("SOR", vec![a], nest)
}

/// An out-of-place 5-point stencil:
/// `out[i,j] = f(a[i,j], a[i-1,j], a[i+1,j], a[i,j-1], a[i,j+1])` over the
/// interior `n`×`n` points.
///
/// The PDE neighbourhood with the centre point included, writing a second
/// array (Jacobi-style): five reads of `a` in two reference classes plus
/// an independent write case, the densest single-array read pattern of
/// the library.
pub fn stencil(n: i64) -> Kernel {
    let ext = n as usize + 2;
    let a = ArrayDecl::new("a", &[ext, ext], ELEM);
    let out = ArrayDecl::new("out", &[ext, ext], ELEM);
    let id = ArrayId(0);
    let nest = LoopNest {
        loops: vec![Loop::new(1, n), Loop::new(1, n)],
        refs: vec![
            ArrayRef::read(id, vec![v(0), v(1)]),
            ArrayRef::read(id, vec![v(0) - 1, v(1)]),
            ArrayRef::read(id, vec![v(0) + 1, v(1)]),
            ArrayRef::read(id, vec![v(0), v(1) - 1]),
            ArrayRef::read(id, vec![v(0), v(1) + 1]),
            ArrayRef::write(ArrayId(1), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Stencil", vec![a, out], nest)
}

/// MPEG inverse quantisation (the paper's Dequant, from Panda/Dutt \[1\]):
/// `out[i,j] = coeff[i,j] * qtable[i,j]` over an `n`×`n` coefficient plane.
///
/// Two reads and one write per iteration; three arrays with identical access
/// patterns (compatible — a pure *case* workload for the placement
/// optimiser).
pub fn dequant(n: i64) -> Kernel {
    let dims = &[n as usize, n as usize];
    let coeff = ArrayDecl::new("coeff", dims, ELEM);
    let qtable = ArrayDecl::new("qtable", dims, ELEM);
    let out = ArrayDecl::new("out", dims, ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n - 1), Loop::new(0, n - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1)]),
            ArrayRef::read(ArrayId(1), vec![v(0), v(1)]),
            ArrayRef::write(ArrayId(2), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Dequant", vec![coeff, qtable, out], nest)
}

/// The paper's Example 2 (matrix addition), used to demonstrate off-chip
/// assignment across three arrays:
///
/// ```text
/// int a[6][6], b[6][6], c[6][6]
/// for i = 0, 5
///   for j = 0, 5
///     c[i,j] = a[i,j] + b[i,j]
/// ```
pub fn matadd(n: i64) -> Kernel {
    let dims = &[n as usize, n as usize];
    let a = ArrayDecl::new("a", dims, ELEM);
    let b = ArrayDecl::new("b", dims, ELEM);
    let c = ArrayDecl::new("c", dims, ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n - 1), Loop::new(0, n - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1)]),
            ArrayRef::read(ArrayId(1), vec![v(0), v(1)]),
            ArrayRef::write(ArrayId(2), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("MatAdd", vec![a, b, c], nest)
}

/// The paper's Example 3(a) (`a[i,j] = b[j,i]`), whose column-major read of
/// `b` motivates tiling.
pub fn transpose(n: i64) -> Kernel {
    let dims = &[n as usize, n as usize];
    let a = ArrayDecl::new("a", dims, ELEM);
    let b = ArrayDecl::new("b", dims, ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n - 1), Loop::new(0, n - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(1), vec![v(1), v(0)]),
            ArrayRef::write(ArrayId(0), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Transpose", vec![a, b], nest)
}

/// A direct-form FIR filter: `y[i] = Σ_k h[k] · x[i+k]` over `taps`
/// coefficients — the canonical 1-D DSP kernel of the paper's domain.
/// The coefficient array is tiny and perfectly reused; the signal streams.
pub fn fir(n: i64, taps: i64) -> Kernel {
    let x = ArrayDecl::new("x", &[(n + taps) as usize], ELEM);
    let h = ArrayDecl::new("h", &[taps as usize], ELEM);
    let y = ArrayDecl::new("y", &[n as usize], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n - 1), Loop::new(0, taps - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0) + v(1)]),
            ArrayRef::read(ArrayId(1), vec![v(1)]),
            ArrayRef::write(ArrayId(2), vec![v(0)]),
        ],
    };
    Kernel::new("FIR", vec![x, h, y], nest)
}

/// 2-D convolution with a `k`×`k` kernel over an `n`×`n` image —
/// the workhorse of embedded image processing.
pub fn conv2d(n: i64, k: i64) -> Kernel {
    let img = ArrayDecl::new("img", &[(n + k - 1) as usize, (n + k - 1) as usize], ELEM);
    let coef = ArrayDecl::new("coef", &[k as usize, k as usize], ELEM);
    let out = ArrayDecl::new("out", &[n as usize, n as usize], ELEM);
    let nest = LoopNest {
        loops: vec![
            Loop::new(0, n - 1),
            Loop::new(0, n - 1),
            Loop::new(0, k - 1),
            Loop::new(0, k - 1),
        ],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0) + v(2), v(1) + v(3)]),
            ArrayRef::read(ArrayId(1), vec![v(2), v(3)]),
            ArrayRef::write(ArrayId(2), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Conv2D", vec![img, coef, out], nest)
}

/// Matrix–vector product `y[i] += m[i,j] · x[j]`: the matrix streams once,
/// the vector is reused every row.
pub fn matvec(n: i64) -> Kernel {
    let m = ArrayDecl::new("m", &[n as usize, n as usize], ELEM);
    let x = ArrayDecl::new("x", &[n as usize], ELEM);
    let y = ArrayDecl::new("y", &[n as usize], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n - 1), Loop::new(0, n - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1)]),
            ArrayRef::read(ArrayId(1), vec![v(1)]),
            ArrayRef::read(ArrayId(2), vec![v(0)]),
            ArrayRef::write(ArrayId(2), vec![v(0)]),
        ],
    };
    Kernel::new("MatVec", vec![m, x, y], nest)
}

/// The five kernels of the paper's evaluation, each with the paper's 31×31
/// iteration space.
pub fn all_paper_kernels() -> Vec<Kernel> {
    vec![compress(31), matmul(31), pde(31), sor(31), dequant(31)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;
    use crate::trace::TraceGen;

    #[test]
    fn compress_matches_paper_example_1() {
        let k = compress(31);
        assert_eq!(k.arrays[0].dims, vec![32, 32]);
        assert_eq!(k.nest.const_iteration_count(), Some(31 * 31));
        assert_eq!(k.reads_per_iteration(), 4);
        assert_eq!(k.read_trip_count(), Some(4 * 961));
    }

    #[test]
    fn all_paper_kernels_have_31x31_outer_iteration_space() {
        for k in all_paper_kernels() {
            let outer = k.nest.loops[0].const_trip_count().unwrap();
            let inner = k.nest.loops[1].const_trip_count().unwrap();
            assert_eq!((outer, inner), (31, 31), "{}", k.name);
        }
    }

    #[test]
    fn matmul_is_three_deep() {
        let k = matmul(31);
        assert_eq!(k.nest.depth(), 3);
        assert_eq!(k.nest.const_iteration_count(), Some(31 * 31 * 31));
        assert_eq!(k.reads_per_iteration(), 3);
    }

    #[test]
    fn every_kernel_traces_without_panicking() {
        for k in all_paper_kernels()
            .into_iter()
            .chain([matadd(6), transpose(8)])
        {
            let l = DataLayout::natural(&k);
            let n = TraceGen::new(&k, &l).count();
            let expected = k.nest.const_iteration_count().unwrap() as usize * k.nest.refs.len();
            assert_eq!(n, expected, "{}", k.name);
        }
    }

    #[test]
    fn stencil_is_out_of_place_with_five_reads() {
        let k = stencil(31);
        assert_eq!(k.arrays.len(), 2);
        assert_eq!(k.reads_per_iteration(), 5);
        assert_eq!(k.read_trip_count(), Some(5 * 961));
        let l = DataLayout::natural(&k);
        assert_eq!(TraceGen::new(&k, &l).count(), 961 * 6);
    }

    #[test]
    fn stencil_kernels_stay_in_bounds() {
        // PDE/SOR/Stencil touch i±1, j±1; the declared extents must
        // absorb them.
        for k in [pde(31), sor(31), stencil(31)] {
            let l = DataLayout::natural(&k);
            // element_address panics on out-of-bounds; consuming the trace
            // is the assertion.
            let _ = TraceGen::new(&k, &l).count();
        }
    }

    #[test]
    fn dequant_reads_two_arrays_per_point() {
        let k = dequant(31);
        assert_eq!(k.reads_per_iteration(), 2);
        assert_eq!(k.read_trip_count(), Some(2 * 961));
    }

    #[test]
    fn fir_coefficients_are_loop_reused() {
        let k = fir(64, 16);
        assert_eq!(k.nest.depth(), 2);
        assert_eq!(k.reads_per_iteration(), 2);
        let l = DataLayout::natural(&k);
        assert_eq!(TraceGen::new(&k, &l).count(), 64 * 16 * 3);
    }

    #[test]
    fn conv2d_traces_in_bounds() {
        let k = conv2d(16, 3);
        let l = DataLayout::natural(&k);
        // element_address panics on out-of-bounds; consuming the trace is
        // the assertion.
        assert_eq!(TraceGen::new(&k, &l).count(), 16 * 16 * 9 * 3);
    }

    #[test]
    fn matvec_reads_three_arrays() {
        let k = matvec(31);
        assert_eq!(k.reads_per_iteration(), 3);
        assert_eq!(k.read_trip_count(), Some(3 * 961));
    }

    #[test]
    fn matadd_matches_paper_example_2_sizes() {
        let k = matadd(6);
        let l = DataLayout::natural(&k);
        // Natural packed bases: a at 0, b at 144, c at 288 (4-byte ints).
        assert_eq!(l.placement(ArrayId(1)).base, 144);
        assert_eq!(l.placement(ArrayId(2)).base, 288);
    }
}
