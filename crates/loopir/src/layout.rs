//! Off-chip data layouts.
//!
//! The DAC'99 off-chip memory assignment works by *padding*: shifting array
//! base addresses and stretching the outermost-dimension pitch so that the
//! leading element of each reference class maps to a chosen cache line
//! (paper §4.1 — `a[1][0]` moved from address 32 to 36 so it lands on cache
//! line 2 instead of colliding with `a[0][0]` on line 0).
//!
//! A [`DataLayout`] therefore stores, per array, a base byte address and an
//! outermost-dimension pitch; inner dimensions stay contiguous row-major.

use crate::nest::{ArrayId, Kernel};

/// Placement of one array in off-chip memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Placement {
    /// Byte address of element `[0][0]…[0]`.
    pub base: u64,
    /// Bytes between consecutive outermost-dimension slices ("rows").
    /// Equals the natural slice size when unpadded. Unused for rank-1 arrays.
    pub row_pitch: u64,
}

/// Maps every array of a kernel to off-chip byte addresses.
///
/// # Example
///
/// ```
/// use loopir::kernels;
/// use loopir::layout::DataLayout;
/// use loopir::ArrayId;
///
/// let k = kernels::compress(31);
/// let layout = DataLayout::natural(&k);
/// // a[0][0] at base 0; a[1][0] one natural row (32 ints = 128 B) later.
/// assert_eq!(layout.element_address(&k, ArrayId(0), &[0, 0]), 0);
/// assert_eq!(layout.element_address(&k, ArrayId(0), &[1, 0]), 128);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataLayout {
    placements: Vec<Placement>,
}

impl DataLayout {
    /// The natural layout: arrays packed back-to-back starting at address 0,
    /// each with its natural (unpadded) row pitch.
    pub fn natural(kernel: &Kernel) -> Self {
        let mut placements = Vec::with_capacity(kernel.arrays.len());
        let mut cursor = 0u64;
        for a in &kernel.arrays {
            let row_pitch = natural_row_pitch(a.dims.as_slice(), a.elem_size);
            placements.push(Placement {
                base: cursor,
                row_pitch,
            });
            cursor += a.byte_size() as u64;
        }
        DataLayout { placements }
    }

    /// Builds a layout from explicit placements (used by the off-chip
    /// assignment optimiser).
    ///
    /// # Panics
    ///
    /// Panics if the number of placements differs from the kernel's array
    /// count, or any pitch is smaller than the natural slice size (which
    /// would make distinct elements alias).
    pub fn from_placements(kernel: &Kernel, placements: Vec<Placement>) -> Self {
        assert_eq!(
            placements.len(),
            kernel.arrays.len(),
            "one placement per array required"
        );
        for (a, p) in kernel.arrays.iter().zip(&placements) {
            let natural = natural_row_pitch(a.dims.as_slice(), a.elem_size);
            assert!(
                p.row_pitch >= natural,
                "pitch {} for `{}` is below the natural slice size {natural}",
                p.row_pitch,
                a.name
            );
        }
        DataLayout { placements }
    }

    /// The placement of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn placement(&self, id: ArrayId) -> Placement {
        self.placements[id.0]
    }

    /// Byte address of the element at `subscripts` of array `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range, the subscript arity is wrong, or any
    /// subscript is outside the declared extent.
    pub fn element_address(&self, kernel: &Kernel, id: ArrayId, subscripts: &[i64]) -> u64 {
        let a = kernel.array(id);
        assert_eq!(subscripts.len(), a.dims.len(), "subscript arity mismatch");
        for (k, (&s, &d)) in subscripts.iter().zip(&a.dims).enumerate() {
            assert!(
                s >= 0 && (s as usize) < d,
                "subscript {k} of `{}` out of bounds: {s} not in 0..{d}",
                a.name
            );
        }
        let p = self.placements[id.0];
        if a.dims.len() == 1 {
            return p.base + subscripts[0] as u64 * a.elem_size as u64;
        }
        let weights = a.weights();
        let inner: u64 = subscripts[1..]
            .iter()
            .zip(&weights[1..])
            .map(|(&s, &w)| s as u64 * w as u64)
            .sum();
        p.base + subscripts[0] as u64 * p.row_pitch + inner * a.elem_size as u64
    }

    /// One-past-the-end byte address of array `id` under this layout.
    pub fn end_address(&self, kernel: &Kernel, id: ArrayId) -> u64 {
        let a = kernel.array(id);
        let p = self.placements[id.0];
        if a.dims.len() == 1 {
            return p.base + a.byte_size() as u64;
        }
        let slice_bytes: u64 =
            a.dims[1..].iter().map(|&d| d as u64).product::<u64>() * a.elem_size as u64;
        p.base + (a.dims[0] as u64 - 1) * p.row_pitch + slice_bytes
    }

    /// Total padding introduced relative to the natural packed layout,
    /// in bytes — the off-chip memory cost of the optimised assignment.
    pub fn padding_overhead(&self, kernel: &Kernel) -> u64 {
        let natural: u64 = kernel.arrays.iter().map(|a| a.byte_size() as u64).sum();
        let max_end = kernel
            .arrays
            .iter()
            .enumerate()
            .map(|(i, _)| self.end_address(kernel, ArrayId(i)))
            .max()
            .unwrap_or(0);
        max_end.saturating_sub(natural)
    }

    /// Checks that no two arrays overlap under this layout.
    ///
    /// Returns the pair of overlapping array ids on failure. Row padding
    /// *inside* an array is allowed to hold no data but may not be claimed
    /// by another array.
    pub fn check_no_overlap(&self, kernel: &Kernel) -> Result<(), (ArrayId, ArrayId)> {
        let mut spans: Vec<(u64, u64, ArrayId)> = kernel
            .arrays
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let id = ArrayId(i);
                (self.placements[i].base, self.end_address(kernel, id), id)
            })
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 {
                return Err((w[0].2, w[1].2));
            }
        }
        Ok(())
    }
}

fn natural_row_pitch(dims: &[usize], elem_size: usize) -> u64 {
    dims[1..].iter().map(|&d| d as u64).product::<u64>() * elem_size as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::nest::{ArrayDecl, ArrayRef, Kernel, Loop, LoopNest};

    fn kernel_two_arrays() -> Kernel {
        let a = ArrayDecl::new("a", &[6, 6], 1);
        let b = ArrayDecl::new("b", &[6, 6], 1);
        let nest = LoopNest {
            loops: vec![Loop::new(0, 5), Loop::new(0, 5)],
            refs: vec![
                ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0), AffineExpr::var(1)]),
                ArrayRef::read(ArrayId(1), vec![AffineExpr::var(0), AffineExpr::var(1)]),
            ],
        };
        Kernel::new("two", vec![a, b], nest)
    }

    #[test]
    fn natural_layout_packs_arrays() {
        let k = kernel_two_arrays();
        let l = DataLayout::natural(&k);
        assert_eq!(l.placement(ArrayId(0)).base, 0);
        assert_eq!(l.placement(ArrayId(1)).base, 36);
        assert_eq!(l.element_address(&k, ArrayId(1), &[0, 0]), 36);
        assert_eq!(l.element_address(&k, ArrayId(1), &[2, 3]), 36 + 15);
    }

    #[test]
    fn padded_pitch_shifts_rows_only() {
        let k = kernel_two_arrays();
        let l = DataLayout::from_placements(
            &k,
            vec![
                Placement {
                    base: 0,
                    row_pitch: 9, // 3 bytes of padding per row
                },
                Placement {
                    base: 100,
                    row_pitch: 6,
                },
            ],
        );
        assert_eq!(l.element_address(&k, ArrayId(0), &[0, 5]), 5);
        assert_eq!(l.element_address(&k, ArrayId(0), &[1, 0]), 9);
        assert_eq!(l.end_address(&k, ArrayId(0)), 5 * 9 + 6);
    }

    #[test]
    fn paper_compress_padding_example() {
        // §4.1: byte-sized elements, a[0][0] at 0, pitch padded 32 -> 36
        // puts a[1][0] at 36.
        let a = ArrayDecl::new("a", &[32, 32], 1);
        let nest = LoopNest {
            loops: vec![Loop::new(1, 31), Loop::new(1, 31)],
            refs: vec![ArrayRef::read(
                ArrayId(0),
                vec![AffineExpr::var(0), AffineExpr::var(1)],
            )],
        };
        let k = Kernel::new("compress-bytes", vec![a], nest);
        let l = DataLayout::from_placements(
            &k,
            vec![Placement {
                base: 0,
                row_pitch: 36,
            }],
        );
        assert_eq!(l.element_address(&k, ArrayId(0), &[1, 0]), 36);
        // With cache size 8 and line size 2: 36 / 2 = line 18; 18 mod 4 = line 2.
        assert_eq!((36 / 2) % (8 / 2), 2);
    }

    #[test]
    fn overlap_detection() {
        let k = kernel_two_arrays();
        let bad = DataLayout::from_placements(
            &k,
            vec![
                Placement {
                    base: 0,
                    row_pitch: 6,
                },
                Placement {
                    base: 10,
                    row_pitch: 6,
                },
            ],
        );
        assert_eq!(bad.check_no_overlap(&k), Err((ArrayId(0), ArrayId(1))));
        let good = DataLayout::natural(&k);
        assert!(good.check_no_overlap(&k).is_ok());
    }

    #[test]
    fn padding_overhead_counts_extra_bytes() {
        let k = kernel_two_arrays();
        assert_eq!(DataLayout::natural(&k).padding_overhead(&k), 0);
        let padded = DataLayout::from_placements(
            &k,
            vec![
                Placement {
                    base: 0,
                    row_pitch: 6,
                },
                Placement {
                    base: 38,
                    row_pitch: 6,
                },
            ],
        );
        assert_eq!(padded.padding_overhead(&k), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_subscript_panics() {
        let k = kernel_two_arrays();
        let l = DataLayout::natural(&k);
        let _ = l.element_address(&k, ArrayId(0), &[0, 6]);
    }

    #[test]
    #[should_panic(expected = "below the natural")]
    fn under_pitch_panics() {
        let k = kernel_two_arrays();
        let _ = DataLayout::from_placements(
            &k,
            vec![
                Placement {
                    base: 0,
                    row_pitch: 5,
                },
                Placement {
                    base: 100,
                    row_pitch: 6,
                },
            ],
        );
    }

    #[test]
    fn rank_one_arrays_ignore_pitch() {
        let v = ArrayDecl::new("v", &[10], 4);
        let nest = LoopNest {
            loops: vec![Loop::new(0, 9)],
            refs: vec![ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0)])],
        };
        let k = Kernel::new("vec", vec![v], nest);
        let l = DataLayout::natural(&k);
        assert_eq!(l.element_address(&k, ArrayId(0), &[3]), 12);
        assert_eq!(l.end_address(&k, ArrayId(0)), 40);
    }
}
