//! Loop nests, arrays, and array references.
//!
//! A [`Kernel`] is a perfectly nested affine loop over a set of declared
//! arrays — the unit of workload in the DAC'99 exploration flow. Loop bounds
//! may depend affinely on outer induction variables (needed by the tiled
//! nests that [`transform::tile`](crate::transform::tile) produces, whose
//! element loops run `for j = tj .. min(tj + B - 1, n)`).

use crate::expr::AffineExpr;
use std::fmt;

/// Identifies an array within one [`Kernel`] (index into [`Kernel::arrays`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ArrayId(pub usize);

/// A declared multi-dimensional array.
///
/// Arrays are laid out row-major by [`DataLayout`](crate::layout::DataLayout);
/// `dims` are extents per dimension and `elem_size` is the element size in
/// bytes (the paper's kernels use 4-byte `int`s).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayDecl {
    /// Human-readable name, e.g. `"a"`.
    pub name: String,
    /// Extent of each dimension, outermost first.
    pub dims: Vec<usize>,
    /// Element size in bytes.
    pub elem_size: usize,
}

impl ArrayDecl {
    /// Declares an array.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, any dimension is zero, or `elem_size` is 0.
    pub fn new(name: impl Into<String>, dims: &[usize], elem_size: usize) -> Self {
        assert!(!dims.is_empty(), "array must have at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "array dimensions must be > 0");
        assert!(elem_size > 0, "element size must be > 0");
        ArrayDecl {
            name: name.into(),
            dims: dims.to_vec(),
            elem_size,
        }
    }

    /// Number of elements in the array.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True if the array holds no elements (never true for validated decls).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total natural (unpadded) size in bytes.
    pub fn byte_size(&self) -> usize {
        self.len() * self.elem_size
    }

    /// Row-major weight (in elements) of each subscript position:
    /// `weights[k]` multiplies subscript `k` when linearising.
    pub fn weights(&self) -> Vec<usize> {
        let mut w = vec![1usize; self.dims.len()];
        for k in (0..self.dims.len().saturating_sub(1)).rev() {
            w[k] = w[k + 1] * self.dims[k + 1];
        }
        w
    }
}

/// Whether a reference reads or writes memory.
///
/// The paper's energy model counts only reads ("reads dominate processor
/// cache accesses"), but the trace generator emits both so the simulator
/// substrate stays general.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One textual array reference inside the loop body, e.g. `a[i-1][j]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayRef {
    /// Which array is referenced.
    pub array: ArrayId,
    /// One affine subscript per array dimension.
    pub subscripts: Vec<AffineExpr>,
    /// Read or write.
    pub kind: AccessKind,
}

impl ArrayRef {
    /// A read reference.
    pub fn read(array: ArrayId, subscripts: Vec<AffineExpr>) -> Self {
        ArrayRef {
            array,
            subscripts,
            kind: AccessKind::Read,
        }
    }

    /// A write reference.
    pub fn write(array: ArrayId, subscripts: Vec<AffineExpr>) -> Self {
        ArrayRef {
            array,
            subscripts,
            kind: AccessKind::Write,
        }
    }

    /// The linear parts of all subscripts, concatenated — the `H` matrix of
    /// Wolf & Lam flattened row-major. Two references with equal `h_matrix`
    /// are *uniformly generated*.
    pub fn h_matrix(&self, depth_count: usize) -> Vec<i64> {
        let mut h = Vec::with_capacity(self.subscripts.len() * depth_count);
        for s in &self.subscripts {
            h.extend(s.linear_part(depth_count));
        }
        h
    }

    /// The constant vector `c` of the reference (one entry per subscript).
    pub fn constant_vector(&self) -> Vec<i64> {
        self.subscripts.iter().map(|s| s.constant_term()).collect()
    }
}

/// An inclusive loop bound, possibly affine in outer induction variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bound {
    /// A compile-time constant.
    Const(i64),
    /// An affine function of outer induction variables.
    Affine(AffineExpr),
    /// `min(expr, cap)` — produced by tiling for the last partial tile.
    Min(AffineExpr, i64),
}

impl Bound {
    /// Evaluates the bound at the current iteration point (outer loops only).
    pub fn eval(&self, ivs: &[i64]) -> i64 {
        match self {
            Bound::Const(k) => *k,
            Bound::Affine(e) => e.eval(ivs),
            Bound::Min(e, cap) => e.eval(ivs).min(*cap),
        }
    }

    /// The constant value if this bound does not depend on any variable.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Bound::Const(k) => Some(*k),
            Bound::Affine(e) if e.is_constant() => Some(e.constant_term()),
            Bound::Min(e, cap) if e.is_constant() => Some(e.constant_term().min(*cap)),
            _ => None,
        }
    }

    /// Remaps the depths of any embedded expression (see
    /// [`AffineExpr::remap_depths`]).
    pub fn remap_depths(&self, map: impl Fn(usize) -> usize) -> Bound {
        match self {
            Bound::Const(k) => Bound::Const(*k),
            Bound::Affine(e) => Bound::Affine(e.remap_depths(map)),
            Bound::Min(e, cap) => Bound::Min(e.remap_depths(map), *cap),
        }
    }
}

impl From<i64> for Bound {
    fn from(k: i64) -> Bound {
        Bound::Const(k)
    }
}

/// One loop level: `for iv = lower ..= upper step step`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Loop {
    /// Inclusive lower bound.
    pub lower: Bound,
    /// Inclusive upper bound.
    pub upper: Bound,
    /// Positive step.
    pub step: i64,
}

impl Loop {
    /// A unit-step loop `lower ..= upper`.
    ///
    /// # Panics
    ///
    /// Panics if both bounds are constant and `lower > upper` (empty loops
    /// are almost always construction bugs in this domain).
    pub fn new(lower: impl Into<Bound>, upper: impl Into<Bound>) -> Self {
        Self::with_step(lower, upper, 1)
    }

    /// A loop with an explicit step.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`, or if both bounds are constant with
    /// `lower > upper`.
    pub fn with_step(lower: impl Into<Bound>, upper: impl Into<Bound>, step: i64) -> Self {
        assert!(step > 0, "loop step must be positive");
        let (lower, upper) = (lower.into(), upper.into());
        if let (Some(lo), Some(hi)) = (lower.as_const(), upper.as_const()) {
            assert!(lo <= hi, "empty loop: {lo} ..= {hi}");
        }
        Loop { lower, upper, step }
    }

    /// Trip count if both bounds are constant.
    pub fn const_trip_count(&self) -> Option<u64> {
        let lo = self.lower.as_const()?;
        let hi = self.upper.as_const()?;
        Some(((hi - lo) / self.step + 1).max(0) as u64)
    }
}

/// A perfect loop nest: the loops (outermost first) and the body references
/// in program order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopNest {
    /// Loop levels, outermost first.
    pub loops: Vec<Loop>,
    /// Body references in program order (executed once per iteration point).
    pub refs: Vec<ArrayRef>,
}

impl LoopNest {
    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Iteration count if all bounds are constant (rectangular nest).
    pub fn const_iteration_count(&self) -> Option<u64> {
        self.loops
            .iter()
            .map(Loop::const_trip_count)
            .try_fold(1u64, |acc, t| t.map(|t| acc * t))
    }
}

/// A named workload: declared arrays plus one perfect loop nest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Kernel {
    /// Display name, e.g. `"Compress"`.
    pub name: String,
    /// All arrays touched by the nest.
    pub arrays: Vec<ArrayDecl>,
    /// The loop nest.
    pub nest: LoopNest,
}

impl Kernel {
    /// Builds a kernel, validating that every reference is well-formed:
    /// array ids in range, subscript arity matching the array rank, and no
    /// subscript referencing a loop deeper than the nest.
    ///
    /// # Panics
    ///
    /// Panics on any of the above violations — these are construction bugs,
    /// not runtime conditions.
    pub fn new(name: impl Into<String>, arrays: Vec<ArrayDecl>, nest: LoopNest) -> Self {
        let depth = nest.depth();
        for r in &nest.refs {
            let a = arrays
                .get(r.array.0)
                .unwrap_or_else(|| panic!("reference to undeclared array {:?}", r.array));
            assert_eq!(
                r.subscripts.len(),
                a.dims.len(),
                "reference to `{}` has {} subscripts but the array has rank {}",
                a.name,
                r.subscripts.len(),
                a.dims.len()
            );
            for s in &r.subscripts {
                if let Some(d) = s.max_depth() {
                    assert!(
                        d < depth,
                        "subscript {s} of `{}` references loop depth {d} but nest depth is {depth}",
                        a.name
                    );
                }
            }
        }
        Kernel {
            name: name.into(),
            arrays,
            nest,
        }
    }

    /// The declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Number of read references per iteration point.
    pub fn reads_per_iteration(&self) -> usize {
        self.nest
            .refs
            .iter()
            .filter(|r| r.kind == AccessKind::Read)
            .count()
    }

    /// Total read accesses for a rectangular nest (the paper's
    /// *trip count* input to the cycle model), if bounds are constant.
    pub fn read_trip_count(&self) -> Option<u64> {
        Some(self.nest.const_iteration_count()? * self.reads_per_iteration() as u64)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} {{", self.name)?;
        for a in &self.arrays {
            write!(f, "  array {}", a.name)?;
            for d in &a.dims {
                write!(f, "[{d}]")?;
            }
            writeln!(f, " ({}B elems)", a.elem_size)?;
        }
        for (d, l) in self.nest.loops.iter().enumerate() {
            writeln!(
                f,
                "  for i{d} = {:?} ..= {:?} step {}",
                l.lower, l.upper, l.step
            )?;
        }
        for r in &self.nest.refs {
            let a = &self.arrays[r.array.0];
            write!(
                f,
                "    {} {}",
                if r.kind == AccessKind::Read { "R" } else { "W" },
                a.name
            )?;
            for s in &r.subscripts {
                write!(f, "[{s}]")?;
            }
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_d_kernel() -> Kernel {
        let a = ArrayDecl::new("a", &[8, 8], 4);
        let nest = LoopNest {
            loops: vec![Loop::new(0, 7), Loop::new(0, 7)],
            refs: vec![ArrayRef::read(
                ArrayId(0),
                vec![AffineExpr::var(0), AffineExpr::var(1)],
            )],
        };
        Kernel::new("k", vec![a], nest)
    }

    #[test]
    fn array_weights_are_row_major() {
        let a = ArrayDecl::new("a", &[4, 5, 6], 4);
        assert_eq!(a.weights(), vec![30, 6, 1]);
        assert_eq!(a.len(), 120);
        assert_eq!(a.byte_size(), 480);
    }

    #[test]
    fn loop_trip_count_includes_both_ends() {
        assert_eq!(Loop::new(1, 31).const_trip_count(), Some(31));
        assert_eq!(Loop::with_step(0, 9, 3).const_trip_count(), Some(4));
    }

    #[test]
    fn nest_iteration_count_multiplies() {
        let k = two_d_kernel();
        assert_eq!(k.nest.const_iteration_count(), Some(64));
        assert_eq!(k.read_trip_count(), Some(64));
    }

    #[test]
    #[should_panic(expected = "empty loop")]
    fn empty_loop_panics() {
        let _ = Loop::new(5, 4);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn wrong_arity_panics() {
        let a = ArrayDecl::new("a", &[8, 8], 4);
        let nest = LoopNest {
            loops: vec![Loop::new(0, 7)],
            refs: vec![ArrayRef::read(ArrayId(0), vec![AffineExpr::var(0)])],
        };
        let _ = Kernel::new("bad", vec![a], nest);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn deep_subscript_panics() {
        let a = ArrayDecl::new("a", &[8], 4);
        let nest = LoopNest {
            loops: vec![Loop::new(0, 7)],
            refs: vec![ArrayRef::read(ArrayId(0), vec![AffineExpr::var(3)])],
        };
        let _ = Kernel::new("bad", vec![a], nest);
    }

    #[test]
    fn bound_min_evaluates() {
        let b = Bound::Min(AffineExpr::var(0) + 3, 10);
        assert_eq!(b.eval(&[5]), 8);
        assert_eq!(b.eval(&[9]), 10);
        assert_eq!(b.as_const(), None);
    }

    #[test]
    fn h_matrix_and_constant_vector() {
        let k = two_d_kernel();
        let r = &k.nest.refs[0];
        assert_eq!(r.h_matrix(2), vec![1, 0, 0, 1]);
        assert_eq!(r.constant_vector(), vec![0, 0]);
    }

    #[test]
    fn display_contains_name_and_refs() {
        let k = two_d_kernel();
        let s = format!("{k}");
        assert!(s.contains("kernel k"));
        assert!(s.contains("R a[i0][i1]"));
    }
}
