//! A small text format for describing kernels.
//!
//! Lets users feed their own loop nests to the exploration flow without
//! writing Rust. The format mirrors the paper's pseudo-code:
//!
//! ```text
//! kernel Compress
//! array a[32][32] elem 4
//! for i = 1 .. 31
//! for j = 1 .. 31
//!   read  a[i][j]
//!   read  a[i-1][j]
//!   read  a[i][j-1]
//!   read  a[i-1][j-1]
//!   write a[i][j]
//! ```
//!
//! Rules:
//!
//! * one declaration per line; `#` starts a comment; blank lines ignored;
//! * `array NAME[d1][d2]… elem BYTES` declares an array (rank ≥ 1);
//! * `for VAR = LO .. HI [step S]` opens the next loop level (loops are
//!   perfectly nested in order of appearance); bounds are integers, or
//!   `VAR±K` referencing an *outer* loop variable, or `min(VAR±K, N)`;
//! * `read NAME[expr]…` / `write NAME[expr]…` adds a body reference, where
//!   each subscript is an affine expression over the loop variables:
//!   `i`, `i+1`, `2*i-3`, `i+j`, `4`.
//!
//! # Example
//!
//! ```
//! use loopir::parse::parse_kernel;
//!
//! let text = "\
//! kernel MatAdd
//! array a[6][6] elem 4
//! array b[6][6] elem 4
//! array c[6][6] elem 4
//! for i = 0 .. 5
//! for j = 0 .. 5
//!   read a[i][j]
//!   read b[i][j]
//!   write c[i][j]
//! ";
//! let kernel = parse_kernel(text)?;
//! assert_eq!(kernel.name, "MatAdd");
//! assert_eq!(kernel.nest.refs.len(), 3);
//! # Ok::<(), loopir::parse::ParseKernelError>(())
//! ```

use crate::expr::AffineExpr;
use crate::nest::{ArrayDecl, ArrayId, ArrayRef, Bound, Kernel, Loop, LoopNest};
use std::error::Error;
use std::fmt;

/// Error from [`parse_kernel`], carrying the 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseKernelError {
    /// 1-based line of the offending input (0 for whole-file errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseKernelError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseKernelError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseKernelError {}

/// Parses a kernel description.
///
/// # Errors
///
/// Returns a [`ParseKernelError`] with the offending line for any syntax or
/// semantic problem (unknown array, undeclared loop variable, reference
/// before any loop, subscript arity mismatch, and so on).
pub fn parse_kernel(text: &str) -> Result<Kernel, ParseKernelError> {
    let mut name: Option<String> = None;
    let mut arrays: Vec<ArrayDecl> = Vec::new();
    let mut loops: Vec<Loop> = Vec::new();
    let mut loop_vars: Vec<String> = Vec::new();
    let mut refs: Vec<ArrayRef> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword {
            "kernel" => {
                if name.is_some() {
                    return Err(ParseKernelError::new(line_no, "duplicate `kernel` line"));
                }
                if rest.is_empty() {
                    return Err(ParseKernelError::new(line_no, "missing kernel name"));
                }
                name = Some(rest.to_string());
            }
            "array" => {
                if !loops.is_empty() {
                    return Err(ParseKernelError::new(
                        line_no,
                        "arrays must be declared before loops",
                    ));
                }
                arrays.push(parse_array(line_no, rest)?);
            }
            "for" => {
                if !refs.is_empty() {
                    return Err(ParseKernelError::new(
                        line_no,
                        "loops must precede body references (perfect nest)",
                    ));
                }
                let (var, l) = parse_for(line_no, rest, &loop_vars)?;
                if loop_vars.contains(&var) {
                    return Err(ParseKernelError::new(
                        line_no,
                        format!("loop variable `{var}` reused"),
                    ));
                }
                loop_vars.push(var);
                loops.push(l);
            }
            "read" | "write" => {
                if loops.is_empty() {
                    return Err(ParseKernelError::new(
                        line_no,
                        "body reference before any loop",
                    ));
                }
                refs.push(parse_ref(
                    line_no,
                    keyword == "write",
                    rest,
                    &arrays,
                    &loop_vars,
                )?);
            }
            other => {
                return Err(ParseKernelError::new(
                    line_no,
                    format!("unknown keyword `{other}` (expected kernel/array/for/read/write)"),
                ));
            }
        }
    }

    let name = name.ok_or_else(|| ParseKernelError::new(0, "missing `kernel NAME` line"))?;
    if refs.is_empty() {
        return Err(ParseKernelError::new(0, "kernel has no body references"));
    }
    // Kernel::new re-validates arities and depths; surface its panics as
    // parse errors by checking here first.
    let depth = loops.len();
    for r in &refs {
        let a = arrays
            .get(r.array.0)
            .expect("array ids created from the declared list");
        if r.subscripts.len() != a.dims.len() {
            return Err(ParseKernelError::new(
                0,
                format!(
                    "reference to `{}` has {} subscripts, array rank is {}",
                    a.name,
                    r.subscripts.len(),
                    a.dims.len()
                ),
            ));
        }
        for s in &r.subscripts {
            if let Some(d) = s.max_depth() {
                if d >= depth {
                    return Err(ParseKernelError::new(0, "subscript deeper than nest"));
                }
            }
        }
    }
    Ok(Kernel::new(name, arrays, LoopNest { loops, refs }))
}

/// `NAME[d1][d2]… elem BYTES`
fn parse_array(line: usize, rest: &str) -> Result<ArrayDecl, ParseKernelError> {
    let (decl, elem) = rest
        .split_once("elem")
        .ok_or_else(|| ParseKernelError::new(line, "array declaration needs `elem BYTES`"))?;
    let elem_size: usize = elem
        .trim()
        .parse()
        .map_err(|_| ParseKernelError::new(line, format!("bad element size `{}`", elem.trim())))?;
    let decl = decl.trim();
    let bracket = decl
        .find('[')
        .ok_or_else(|| ParseKernelError::new(line, "array needs at least one dimension"))?;
    let name = decl[..bracket].trim();
    if name.is_empty() {
        return Err(ParseKernelError::new(line, "missing array name"));
    }
    let mut dims = Vec::new();
    let mut remaining = &decl[bracket..];
    while let Some(stripped) = remaining.strip_prefix('[') {
        let close = stripped
            .find(']')
            .ok_or_else(|| ParseKernelError::new(line, "unclosed `[` in array dimensions"))?;
        let dim: usize = stripped[..close].trim().parse().map_err(|_| {
            ParseKernelError::new(line, format!("bad dimension `{}`", &stripped[..close]))
        })?;
        if dim == 0 {
            return Err(ParseKernelError::new(line, "zero array dimension"));
        }
        dims.push(dim);
        remaining = stripped[close + 1..].trim_start();
    }
    if !remaining.is_empty() {
        return Err(ParseKernelError::new(
            line,
            format!("trailing junk after dimensions: `{remaining}`"),
        ));
    }
    if elem_size == 0 {
        return Err(ParseKernelError::new(line, "zero element size"));
    }
    Ok(ArrayDecl::new(name, &dims, elem_size))
}

/// `VAR = LO .. HI [step S]`
fn parse_for(
    line: usize,
    rest: &str,
    outer_vars: &[String],
) -> Result<(String, Loop), ParseKernelError> {
    let (var, bounds) = rest
        .split_once('=')
        .ok_or_else(|| ParseKernelError::new(line, "for-loop needs `VAR = LO .. HI`"))?;
    let var = var.trim().to_string();
    if var.is_empty() || !var.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(ParseKernelError::new(
            line,
            format!("bad loop variable `{var}`"),
        ));
    }
    let (range, step) = match bounds.split_once("step") {
        Some((r, s)) => {
            let step: i64 = s
                .trim()
                .parse()
                .map_err(|_| ParseKernelError::new(line, format!("bad step `{}`", s.trim())))?;
            if step <= 0 {
                return Err(ParseKernelError::new(line, "step must be positive"));
            }
            (r, step)
        }
        None => (bounds, 1),
    };
    let (lo, hi) = range
        .split_once("..")
        .ok_or_else(|| ParseKernelError::new(line, "range needs `LO .. HI`"))?;
    let lower = parse_bound(line, lo.trim(), outer_vars)?;
    let upper = parse_bound(line, hi.trim(), outer_vars)?;
    if let (Some(l), Some(h)) = (lower.as_const(), upper.as_const()) {
        if l > h {
            return Err(ParseKernelError::new(
                line,
                format!("empty range {l} .. {h}"),
            ));
        }
    }
    Ok((var, Loop { lower, upper, step }))
}

/// An integer, `VAR±K`, or `min(VAR±K, N)`.
fn parse_bound(line: usize, text: &str, vars: &[String]) -> Result<Bound, ParseKernelError> {
    if let Some(inner) = text.strip_prefix("min(").and_then(|t| t.strip_suffix(')')) {
        let (e, cap) = inner
            .split_once(',')
            .ok_or_else(|| ParseKernelError::new(line, "min() bound needs `min(EXPR, N)`"))?;
        let expr = parse_affine(line, e.trim(), vars)?;
        let cap: i64 = cap
            .trim()
            .parse()
            .map_err(|_| ParseKernelError::new(line, format!("bad min() cap `{}`", cap.trim())))?;
        return Ok(Bound::Min(expr, cap));
    }
    let expr = parse_affine(line, text, vars)?;
    Ok(if expr.is_constant() {
        Bound::Const(expr.constant_term())
    } else {
        Bound::Affine(expr)
    })
}

/// `read|write NAME[expr][expr]…`
fn parse_ref(
    line: usize,
    is_write: bool,
    rest: &str,
    arrays: &[ArrayDecl],
    vars: &[String],
) -> Result<ArrayRef, ParseKernelError> {
    let bracket = rest
        .find('[')
        .ok_or_else(|| ParseKernelError::new(line, "reference needs subscripts"))?;
    let name = rest[..bracket].trim();
    let array_idx = arrays
        .iter()
        .position(|a| a.name == name)
        .ok_or_else(|| ParseKernelError::new(line, format!("unknown array `{name}`")))?;
    let mut subscripts = Vec::new();
    let mut remaining = &rest[bracket..];
    while let Some(stripped) = remaining.strip_prefix('[') {
        let close = stripped
            .find(']')
            .ok_or_else(|| ParseKernelError::new(line, "unclosed `[` in subscript"))?;
        subscripts.push(parse_affine(line, stripped[..close].trim(), vars)?);
        remaining = stripped[close + 1..].trim_start();
    }
    if !remaining.is_empty() {
        return Err(ParseKernelError::new(
            line,
            format!("trailing junk after subscripts: `{remaining}`"),
        ));
    }
    let array = ArrayId(array_idx);
    Ok(if is_write {
        ArrayRef::write(array, subscripts)
    } else {
        ArrayRef::read(array, subscripts)
    })
}

/// Affine expressions: `±` separated terms of `K`, `VAR`, or `K*VAR`.
fn parse_affine(line: usize, text: &str, vars: &[String]) -> Result<AffineExpr, ParseKernelError> {
    if text.is_empty() {
        return Err(ParseKernelError::new(line, "empty expression"));
    }
    let mut expr = AffineExpr::constant(0);
    // Split into signed terms.
    let mut terms: Vec<(i64, String)> = Vec::new();
    let mut sign = 1i64;
    let mut current = String::new();
    for ch in text.chars() {
        match ch {
            '+' | '-' => {
                if current.trim().is_empty() && terms.is_empty() && ch == '-' {
                    // Leading minus.
                    sign = -1;
                } else if current.trim().is_empty() {
                    return Err(ParseKernelError::new(
                        line,
                        format!("dangling operator in `{text}`"),
                    ));
                } else {
                    terms.push((sign, current.trim().to_string()));
                    current.clear();
                    sign = if ch == '-' { -1 } else { 1 };
                }
            }
            _ => current.push(ch),
        }
    }
    if current.trim().is_empty() {
        return Err(ParseKernelError::new(
            line,
            format!("dangling operator in `{text}`"),
        ));
    }
    terms.push((sign, current.trim().to_string()));

    for (sign, term) in terms {
        let (coeff, symbol) = match term.split_once('*') {
            Some((k, v)) => {
                let k: i64 = k.trim().parse().map_err(|_| {
                    ParseKernelError::new(line, format!("bad coefficient `{}`", k.trim()))
                })?;
                (k, v.trim().to_string())
            }
            None => (1, term.clone()),
        };
        if let Ok(k) = symbol.parse::<i64>() {
            expr = expr + sign * coeff * k;
        } else {
            let depth = vars.iter().position(|v| *v == symbol).ok_or_else(|| {
                ParseKernelError::new(line, format!("unknown variable `{symbol}`"))
            })?;
            expr = expr + AffineExpr::linear(depth, sign * coeff, 0);
        }
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;
    use crate::trace::TraceGen;

    const COMPRESS: &str = "\
kernel Compress
array a[32][32] elem 4
for i = 1 .. 31
for j = 1 .. 31
  read  a[i][j]
  read  a[i-1][j]
  read  a[i][j-1]
  read  a[i-1][j-1]
  write a[i][j]
";

    #[test]
    fn parses_the_compress_example_identically_to_the_builtin() {
        let parsed = parse_kernel(COMPRESS).expect("valid input");
        let builtin = crate::kernels::compress(31);
        assert_eq!(parsed.arrays, builtin.arrays);
        assert_eq!(parsed.nest, builtin.nest);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header comment\n\nkernel K\narray v[8] elem 4 # trailing\nfor i = 0 .. 7\nread v[i]\n";
        let k = parse_kernel(text).expect("valid input");
        assert_eq!(k.name, "K");
        assert_eq!(k.nest.refs.len(), 1);
    }

    #[test]
    fn parses_coefficients_and_multi_var_expressions() {
        let text = "\
kernel Diag
array m[16][16] elem 4
for i = 0 .. 3
for j = 0 .. 3
  read m[2*i+j][i+2]
";
        let k = parse_kernel(text).expect("valid input");
        let s = &k.nest.refs[0].subscripts;
        assert_eq!(s[0].coeff(0), 2);
        assert_eq!(s[0].coeff(1), 1);
        assert_eq!(s[1].constant_term(), 2);
        // And it traces without going out of bounds.
        let l = DataLayout::natural(&k);
        assert_eq!(TraceGen::new(&k, &l).count(), 16);
    }

    #[test]
    fn parses_affine_and_min_bounds() {
        let text = "\
kernel Tri
array v[10] elem 1
for i = 0 .. 8 step 2
for j = i .. min(i+1, 8)
  read v[j]
";
        let k = parse_kernel(text).expect("valid input");
        assert_eq!(k.nest.loops[0].step, 2);
        assert!(matches!(k.nest.loops[1].lower, Bound::Affine(_)));
        assert!(matches!(k.nest.loops[1].upper, Bound::Min(_, 8)));
    }

    #[test]
    fn negative_constants_and_leading_minus() {
        let text = "\
kernel Neg
array v[10] elem 1
for i = 3 .. 9
  read v[i-3]
  read v[-1*i+9]
";
        let k = parse_kernel(text).expect("valid input");
        assert_eq!(k.nest.refs[0].subscripts[0].constant_term(), -3);
        assert_eq!(k.nest.refs[1].subscripts[0].coeff(0), -1);
    }

    fn err_of(text: &str) -> ParseKernelError {
        parse_kernel(text).expect_err("should fail")
    }

    #[test]
    fn reports_line_numbers() {
        let e = err_of("kernel K\narray v[8] elem 4\nfor i = 0 .. 7\nread w[i]\n");
        assert_eq!(e.line, 4);
        assert!(e.message.contains("unknown array"));
    }

    #[test]
    fn rejects_structural_errors() {
        assert!(err_of("array v[8] elem 4\n").message.contains("kernel"));
        assert!(err_of("kernel K\nread v[0]\n")
            .message
            .contains("before any loop"));
        assert!(
            err_of("kernel K\narray v[8] elem 4\nfor i = 5 .. 2\nread v[i]\n")
                .message
                .contains("empty range")
        );
        assert!(
            err_of("kernel K\narray v[8] elem 4\nfor i = 0 .. 7\nread v[i]\nfor j = 0 .. 7\n")
                .message
                .contains("perfect nest")
        );
        assert!(
            err_of("kernel K\narray v[8] elem 4\nfor i = 0 .. 7\nread v[i][0]\n")
                .message
                .contains("rank")
        );
    }

    #[test]
    fn rejects_bad_expressions() {
        assert!(
            err_of("kernel K\narray v[8] elem 4\nfor i = 0 .. 7\nread v[i+]\n")
                .message
                .contains("dangling")
        );
        assert!(
            err_of("kernel K\narray v[8] elem 4\nfor i = 0 .. 7\nread v[q]\n")
                .message
                .contains("unknown variable")
        );
        assert!(
            err_of("kernel K\narray v[8] elem 4\nfor i = 0 .. 7 step 0\nread v[i]\n")
                .message
                .contains("step")
        );
    }

    #[test]
    fn rejects_duplicate_loop_vars_and_kernel_lines() {
        assert!(err_of("kernel K\nkernel L\n").message.contains("duplicate"));
        assert!(
            err_of("kernel K\narray v[8] elem 4\nfor i = 0 .. 7\nfor i = 0 .. 7\nread v[i]\n")
                .message
                .contains("reused")
        );
    }

    #[test]
    fn display_round_trip_is_stable() {
        // Not a full round-trip (Display is for humans), but the parsed
        // kernel behaves identically to the builtin when explored.
        let parsed = parse_kernel(COMPRESS).expect("valid input");
        let l1 = DataLayout::natural(&parsed);
        let builtin = crate::kernels::compress(31);
        let l2 = DataLayout::natural(&builtin);
        let t1: Vec<_> = TraceGen::new(&parsed, &l1).collect();
        let t2: Vec<_> = TraceGen::new(&builtin, &l2).collect();
        assert_eq!(t1, t2);
    }
}
