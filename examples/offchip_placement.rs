//! Off-chip data assignment walk-through (paper §4.1).
//!
//! Reproduces both worked examples from the paper — the padded Matrix
//! Addition layout (Example 2: `b` moved to byte 38, `c` to 76) and the
//! conflict-miss elimination for Compress — and verifies the result with the
//! three-C miss classifier.
//!
//! Run with:
//!
//! ```text
//! cargo run -p suite --release --example offchip_placement
//! ```

use analysis::placement::optimize_layout;
use loopir::{kernels, AccessKind, ArrayDecl, ArrayId, DataLayout, Kernel, TraceGen};
use memsim::{CacheConfig, Simulator, TraceEvent};

fn classify(kernel: &Kernel, layout: &DataLayout, t: usize, l: usize) -> memsim::SimReport {
    let cfg = CacheConfig::new(t, l, 1).expect("valid geometry");
    let events = TraceGen::new(kernel, layout)
        .filter(|a| a.kind == AccessKind::Read)
        .map(|a| TraceEvent::read(a.addr, a.size));
    Simulator::simulate_classified(cfg, events)
}

fn main() {
    // --- Example 2: matrix addition with byte-sized elements --------------
    let proto = kernels::matadd(6);
    let arrays = proto
        .arrays
        .iter()
        .map(|a| ArrayDecl::new(a.name.clone(), &a.dims, 1))
        .collect();
    let matadd = Kernel::new("matadd-bytes", arrays, proto.nest.clone());
    let report = optimize_layout(&matadd, 6, 2).expect("placement succeeds");
    println!("Example 2 (line 2, three cache lines):");
    for (i, a) in matadd.arrays.iter().enumerate() {
        let p = report.layout.placement(ArrayId(i));
        println!(
            "  array {} -> base address {} (cache line {})",
            a.name, p.base, report.leader_lines[i]
        );
    }
    println!("  conflict-free: {}\n", report.conflict_free);

    // --- Compress: eliminate conflict misses at C64 L8 --------------------
    let compress = kernels::compress(31);
    let (t, l) = (64, 8);

    let natural = DataLayout::natural(&compress);
    let before = classify(&compress, &natural, t, l);
    let placed = optimize_layout(&compress, t as u64, l as u64).expect("placement succeeds");
    let after = classify(&compress, &placed.layout, t, l);

    println!("Compress at C{t} L{l}:");
    for (name, rep) in [("natural", &before), ("optimized", &after)] {
        let c = rep.miss_classes.expect("classification enabled");
        println!(
            "  {name:<9} miss rate {:.3}  (compulsory {}, capacity {}, conflict {})",
            rep.stats.read_miss_rate(),
            c.compulsory,
            c.capacity,
            c.conflict
        );
    }
    println!(
        "  padding cost: {} bytes of off-chip memory",
        placed.padding_bytes
    );
    assert_eq!(
        after.miss_classes.expect("classified").conflict,
        0,
        "the optimized layout must eliminate conflict misses"
    );
}
