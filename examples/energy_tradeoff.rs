//! Why energy must be a first-class metric (paper §3, Fig. 1).
//!
//! Sweeps cache size for the Compress kernel under three off-chip SRAM
//! parts. With a cheap off-chip access (`Em` = 2.31 nJ) the minimum-energy
//! cache is small; with an expensive one (`Em` = 43.56 nJ) it is large —
//! while the minimum-*time* configuration is the same large cache in both
//! cases. Size and cycles alone cannot see this.
//!
//! Run with:
//!
//! ```text
//! cargo run -p suite --release --example energy_tradeoff
//! ```

use energy::SramPart;
use loopir::kernels;
use memexplore::{select, CacheDesign, Evaluator, Explorer};

fn main() {
    let kernel = kernels::compress(31);
    let designs: Vec<CacheDesign> = [16usize, 32, 64, 128, 256, 512]
        .iter()
        .map(|&t| CacheDesign::new(t, 4, 1, 1))
        .collect();

    for part in SramPart::paper_parts() {
        println!("{part}");
        let explorer = Explorer::new(Evaluator::with_part(part.clone()));
        let records = explorer.explore_designs(&kernel, &designs);
        for r in &records {
            println!(
                "  C{:<4} miss rate {:.3}  cycles {:>7.0}  energy {:>9.0} nJ",
                r.design.cache_size, r.miss_rate, r.cycles, r.energy_nj
            );
        }
        let e = select::min_energy(&records).expect("non-empty");
        let t = select::min_cycles(&records).expect("non-empty");
        println!(
            "  -> min energy at C{}, min time at C{}\n",
            e.design.cache_size, t.design.cache_size
        );
    }
}
