//! Joint I-/D-cache budget splitting — the paper's stated extension to
//! instruction caches and its outermost `for on-chip memory size M` loop.
//!
//! Loop-kernel code is tiny and perfectly reused, so the minimum-energy
//! split gives the I-cache exactly the smallest power of two covering the
//! body and spends the rest of the budget (or less!) on data.
//!
//! Run with:
//!
//! ```text
//! cargo run -p suite --release --example icache_split
//! ```

use icache::explore::{best_joint_split, joint_explore};
use icache::stream::InstructionStream;
use loopir::kernels;

fn main() {
    let kernel = kernels::compress(31);
    let stream = InstructionStream::for_kernel(&kernel, 0x8000);
    println!(
        "kernel {}: {} body instructions ({} B of code), {} iterations\n",
        kernel.name,
        stream.body_len,
        stream.footprint_bytes(),
        stream.iterations
    );

    for budget in [256usize, 512, 1024] {
        println!("on-chip budget M = {budget} B:");
        for r in joint_explore(&kernel, &stream, budget) {
            let (i, _d) = r.split();
            println!(
                "  I={i:<5} D-pick={:<14} I-mr {:.3}  total energy {:>9.0} nJ  cycles {:>8.0}",
                r.data.design.to_string(),
                r.instruction.miss_rate,
                r.total_energy_nj,
                r.total_cycles
            );
        }
        if let Some(best) = best_joint_split(&kernel, &stream, budget) {
            let (i, d) = best.split();
            println!(
                "  => best split: {i} B instruction / {d} B data ({:.0} nJ)\n",
                best.total_energy_nj
            );
        }
    }
}
