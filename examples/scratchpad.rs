//! Scratchpad vs cache: partitioning the on-chip budget (the technique of
//! the paper's reference [2], Panda/Dutt/Nicolau).
//!
//! Small, hot arrays (a quantisation table, FIR coefficients) are better
//! held in a directly-addressed scratchpad — no tags, no misses — while
//! streaming data keeps a (smaller) cache.
//!
//! Run with:
//!
//! ```text
//! cargo run -p suite --release --example scratchpad
//! ```

use loopir::kernels;
use memexplore::spm::{best_split, explore_split};
use memexplore::Evaluator;

fn main() {
    let eval = Evaluator::default();
    for kernel in [
        kernels::dequant(31),
        kernels::fir(256, 16),
        kernels::compress(31),
    ] {
        println!(
            "kernel {} — SPM/cache splits of a 4 KiB budget:",
            kernel.name
        );
        let records = explore_split(&kernel, 4096, &eval);
        for r in &records {
            let names: Vec<&str> = r
                .assignment
                .arrays
                .iter()
                .map(|&a| kernel.array(a).name.as_str())
                .collect();
            println!(
                "  SPM {:>5} B [{}] + cache {:<14} cache-mr {:.3}  cycles {:>9.0}  energy {:>10.0} nJ",
                r.spm_bytes,
                names.join(","),
                r.cache_design.to_string(),
                r.cache_miss_rate,
                r.cycles,
                r.energy_nj
            );
        }
        if let Some(best) = best_split(&records) {
            println!(
                "  => best: {} B of scratchpad ({:.0} nJ)\n",
                best.spm_bytes, best.energy_nj
            );
        }
    }
}
