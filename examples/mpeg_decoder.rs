//! Whole-program exploration of the MPEG decoder (paper §5).
//!
//! Shows the paper's closing observation: the minimum-energy configuration
//! of the *whole* decoder differs from the minimum-energy configuration of
//! every constituent kernel — per-kernel tuning does not compose.
//!
//! Run with:
//!
//! ```text
//! cargo run -p suite --release --example mpeg_decoder
//! ```

use memexplore::composite::as_records;
use memexplore::{select, DesignSpace, Explorer};

fn main() {
    let program = mpeg::decoder();
    let explorer = Explorer::default();
    let space = DesignSpace::paper();

    println!(
        "{}: {} kernels, {} total invocations",
        program.name,
        program.components.len(),
        program.total_trips()
    );

    // Per-kernel optima.
    println!("\nper-kernel minimum-energy configurations:");
    let designs = space.designs();
    let mut kernel_optima = Vec::new();
    let mut per_kernel = Vec::new();
    for (kernel, trips) in &program.components {
        let records = explorer.explore_designs(kernel, &designs);
        let best = select::min_energy(&records).expect("non-empty space");
        println!(
            "  {:<8} x{:<3} -> {:<14} {:>9.0} nJ",
            kernel.name,
            trips,
            best.design.to_string(),
            best.energy_nj
        );
        kernel_optima.push(best.design);
        per_kernel.push(records);
    }

    // Whole-program aggregation over the same sweeps.
    let composites: Vec<_> = (0..designs.len())
        .map(|i| program.aggregate(per_kernel.iter().map(|rs| rs[i].clone()).collect()))
        .collect();
    let flat = as_records(&composites);
    let e_min = select::min_energy(&flat).expect("non-empty space");
    let t_min = select::min_cycles(&flat).expect("non-empty space");

    println!("\nwhole-decoder minimum energy: {}", e_min.design);
    println!(
        "  energy = {:.0} nJ, cycles = {:.0}",
        e_min.energy_nj, e_min.cycles
    );
    println!("whole-decoder minimum time:   {}", t_min.design);
    println!(
        "  cycles = {:.0}, energy = {:.0} nJ",
        t_min.cycles, t_min.energy_nj
    );

    let matches = kernel_optima.iter().filter(|&&d| d == e_min.design).count();
    println!(
        "\nkernels whose own optimum equals the whole-program optimum: {matches}/{}",
        kernel_optima.len()
    );
}
