//! Tiling study (paper §4.2, Example 3).
//!
//! Sweeps the tiling size for matrix multiplication and for the transpose
//! kernel whose column-major read motivates tiling in the paper, showing
//! the miss-rate minimum near the number of cache lines and the degradation
//! beyond it.
//!
//! Run with:
//!
//! ```text
//! cargo run -p suite --release --example tiling_study
//! ```

use loopir::kernels;
use loopir::transform::tile_all;
use loopir::{AccessKind, DataLayout, TraceGen};
use memexplore::{CacheDesign, Evaluator};
use memsim::{CacheConfig, Simulator, TraceEvent};

fn main() {
    let eval = Evaluator::default();
    let (t, l) = (64usize, 8usize);
    println!("cache C{t} L{l} ({} lines)\n", t / l);

    println!("MatMult (31x31x31): metrics vs tiling size");
    println!(
        "{:>7} {:>10} {:>12} {:>12}",
        "tiling", "miss rate", "cycles", "energy (nJ)"
    );
    for b in [1u64, 2, 4, 8, 16] {
        let r = eval.evaluate(&kernels::matmul(31), CacheDesign::new(t, l, 1, b));
        println!(
            "{:>7} {:>10.3} {:>12.0} {:>12.0}",
            format!("B{b}"),
            r.miss_rate,
            r.cycles,
            r.energy_nj
        );
    }

    // The paper's Example 3: a[i,j] = b[j,i]. Tiling turns the stride-n read
    // of b into tile-local reuse. (A 31-wide array keeps the row pitch
    // co-prime with the cache size; a power-of-two pitch would alias all
    // rows to one set and mask the tiling benefit.)
    println!("\nTranspose (31x31): raw miss rate vs tiling size");
    let kernel = kernels::transpose(31);
    let layout = DataLayout::natural(&kernel);
    for b in [1u64, 2, 4, 8, 16, 32] {
        let tiled = tile_all(&kernel, b);
        let cfg = CacheConfig::new(t, l, 1).expect("valid geometry");
        let events = TraceGen::new(&tiled, &layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        let rep = Simulator::simulate(cfg, events);
        println!("  B{b:<3} miss rate {:.3}", rep.stats.read_miss_rate());
    }
}
