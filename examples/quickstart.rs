//! Quickstart: explore the data-cache design space for one kernel and pick
//! configurations under time/energy bounds — the paper's core workflow.
//!
//! Run with:
//!
//! ```text
//! cargo run -p suite --release --example quickstart
//! ```

use loopir::kernels;
use memexplore::{select, DesignSpace, Explorer};

fn main() {
    // The paper's Example 1 kernel: a 31x31 difference stencil.
    let kernel = kernels::compress(31);
    println!("{kernel}\n");

    // Sweep the full (T, L, S, B) space of the paper's MemExplore loop.
    let explorer = Explorer::default(); // CY7C SRAM, Em = 4.95 nJ
    let records = explorer.explore(&kernel, &DesignSpace::paper());
    println!("explored {} configurations\n", records.len());

    // Unconstrained optima.
    let e_min = select::min_energy(&records).expect("space is non-empty");
    let t_min = select::min_cycles(&records).expect("space is non-empty");
    println!(
        "minimum energy: {}  ({:.0} nJ, {:.0} cycles, miss rate {:.3})",
        e_min.design, e_min.energy_nj, e_min.cycles, e_min.miss_rate
    );
    println!(
        "minimum time:   {}  ({:.0} cycles, {:.0} nJ, miss rate {:.3})",
        t_min.design, t_min.cycles, t_min.energy_nj, t_min.miss_rate
    );

    // Bounded selection: "minimum energy if time is the hard constraint".
    let cycle_bound = t_min.cycles * 1.2;
    if let Some(r) = select::min_energy_bounded(&records, cycle_bound) {
        println!(
            "min energy with cycles <= {:.0}: {}  ({:.0} nJ)",
            cycle_bound, r.design, r.energy_nj
        );
    }

    // The energy-time trade-off curve.
    println!("\nenergy-time Pareto frontier:");
    for r in select::pareto(&records) {
        println!(
            "  {:<16} cycles={:>9.0}  energy={:>9.0} nJ",
            r.design.to_string(),
            r.cycles,
            r.energy_nj
        );
    }
}
