//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges, and
//! [`Rng::gen_bool`]. Determinism per seed is the only contract callers
//! rely on (seeded replacement policies and synthetic trace generators);
//! the stream is *not* compatible with upstream `rand`.

use std::ops::Range;

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps a uniform 64-bit word into `lo..hi` (requires `lo < hi`).
    fn from_word(lo: Self, hi: Self, word: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_word(lo: Self, hi: Self, word: u64) -> Self {
                let width = (hi as i128) - (lo as i128);
                debug_assert!(width > 0);
                let off = (word as u128 % width as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing helpers layered on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from the half-open range `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::from_word(range.start, range.end, self.next_u64())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 uniform mantissa bits -> [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64). Statistically fine for
    /// simulation workloads; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }
}
