//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], benchmark groups with
//! `throughput` / `sample_size` / `measurement_time`, and [`black_box`].
//!
//! Measurement is intentionally simple: each benchmark is warmed up
//! briefly, then timed over `sample_size` samples whose iteration counts
//! are sized to fill `measurement_time`. The median ns/iter is printed to
//! stdout. There are no plots, no statistics beyond the median, and no
//! baseline comparison — enough to spot order-of-magnitude regressions
//! offline.

use std::time::{Duration, Instant};

/// An identity function the optimizer cannot see through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for [`BenchmarkGroup::throughput`] reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: how many iterations fit in one sample?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = settings.measurement_time / settings.sample_size.max(1) as u32;
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = samples_ns[samples_ns.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.1} Melem/s", n as f64 / median * 1e3),
        Throughput::Bytes(n) => {
            format!("  {:.1} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64)
        }
    });
    println!(
        "bench {id:<50} {:>12.1} ns/iter ({} samples x {} iters){}",
        median,
        samples_ns.len(),
        iters,
        rate.unwrap_or_default()
    );
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.into(), self.settings, None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            settings: Settings::default(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.settings, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test` pass harness flags (e.g.
            // `--bench`); with `--test` the binary must not run the
            // benchmarks, mirroring criterion's behaviour.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
