//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of the proptest 1.x API its property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   [`prop_oneof!`],
//! * the [`Strategy`] trait with `prop_map` / `prop_filter_map`,
//! * range strategies over the primitive integers and `f64`,
//!   tuple strategies up to arity 6, [`Just`], [`collection::vec`], and
//!   [`bool::ANY`].
//!
//! Semantics: each test runs `cases` deterministic random cases (fixed
//! seed derived from the test name, so CI runs are reproducible).
//! Failing cases report the failed assertion; **shrinking is not
//! implemented** — on failure the macro panics with the case number so
//! the case can be replayed under a debugger. `.proptest-regressions`
//! files are ignored.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to generate cases (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a test case did not run to completion.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected (e.g. by [`prop_assume!`]) and is retried
    /// without counting against the case budget.
    Reject(String),
    /// A `prop_assert*` failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Helper used by the assertion macros.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Helper used by [`prop_assume!`] and filtered strategies.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type every generated test body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, retrying others.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.new_value(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map `{}` rejected 10000 candidates",
            self.whence
        )
    }
}

/// Always produces (a clone of) the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as u128 % width as u128) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128) - (*self.start() as i128) + 1;
                let off = (rng.next_u64() as u128 % width as u128) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        // next_unit() is in [0, 1); stretch by the next float to make the
        // upper bound reachable in principle without overshooting.
        self.start() + rng.next_unit() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Compatibility re-exports matching `proptest::test_runner` paths.

    pub use super::{ProptestConfig as Config, TestCaseError, TestCaseResult};
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring `proptest::prelude`.

    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Derives the per-test RNG seed from the test name so runs are
/// deterministic but distinct tests see distinct streams.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)*);
            let mut rng = $crate::TestRng::from_seed($crate::seed_from_name(stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                    "proptest `{}`: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), accepted, config.cases
                );
                let ($($pat,)*) = $crate::Strategy::new_value(&strategies, &mut rng);
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest `{}` failed at case {}: {}",
                        stringify!($name), accepted, msg
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)*), a, b
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Discards the current case (retried without counting) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(v in crate::collection::vec((0u8..3, crate::bool::ANY), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (x, _) in v {
                prop_assert!(x < 3);
            }
        }

        #[test]
        fn oneof_only_picks_arms(x in prop_oneof![Just(1u32), Just(4), Just(8)]) {
            prop_assert!(x == 1 || x == 4 || x == 8);
        }

        #[test]
        fn map_and_filter_map_apply(
            even in (0u64..100).prop_map(|x| x * 2),
            odd in (0u64..100).prop_filter_map("odd", |x| (x % 2 == 1).then_some(x)),
        ) {
            prop_assert_eq!(even % 2, 0);
            prop_assert_eq!(odd % 2, 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_from_name("a"), crate::seed_from_name("a"));
        assert_ne!(crate::seed_from_name("a"), crate::seed_from_name("b"));
    }
}
